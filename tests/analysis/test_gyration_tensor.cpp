// Gyration-tensor kernel and the closed-form symmetric 3x3 eigensolver.
#include "analysis/gyration_tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/rgyr.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::ana {
namespace {

dtl::Chunk frame(std::vector<double> xyz, std::uint64_t step = 0) {
  return dtl::Chunk(dtl::ChunkKey{0, step}, dtl::PayloadKind::kPositions3N,
                    std::move(xyz));
}

TEST(Sym3Eigen, DiagonalMatrix) {
  const auto eig = symmetric3_eigenvalues(3.0, 1.0, 2.0, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(eig[0], 3.0);
  EXPECT_DOUBLE_EQ(eig[1], 2.0);
  EXPECT_DOUBLE_EQ(eig[2], 1.0);
}

TEST(Sym3Eigen, KnownOffDiagonalMatrix) {
  // [[2,1,0],[1,2,0],[0,0,5]] has eigenvalues 5, 3, 1.
  const auto eig = symmetric3_eigenvalues(2.0, 2.0, 5.0, 1.0, 0.0, 0.0);
  EXPECT_NEAR(eig[0], 5.0, 1e-12);
  EXPECT_NEAR(eig[1], 3.0, 1e-12);
  EXPECT_NEAR(eig[2], 1.0, 1e-12);
}

TEST(Sym3Eigen, TraceAndOrderingInvariants) {
  Xoshiro256 rng(9);
  for (int t = 0; t < 200; ++t) {
    const double xx = rng.uniform(-5, 5), yy = rng.uniform(-5, 5),
                 zz = rng.uniform(-5, 5), xy = rng.uniform(-3, 3),
                 xz = rng.uniform(-3, 3), yz = rng.uniform(-3, 3);
    const auto eig = symmetric3_eigenvalues(xx, yy, zz, xy, xz, yz);
    EXPECT_GE(eig[0], eig[1] - 1e-9);
    EXPECT_GE(eig[1], eig[2] - 1e-9);
    EXPECT_NEAR(eig[0] + eig[1] + eig[2], xx + yy + zz, 1e-9);
    // Second invariant: sum of pairwise products equals that of A.
    const double m2_a = xx * yy + yy * zz + zz * xx - xy * xy - xz * xz -
                        yz * yz;
    const double m2_e = eig[0] * eig[1] + eig[1] * eig[2] + eig[2] * eig[0];
    EXPECT_NEAR(m2_e, m2_a, 1e-7 * std::max(1.0, std::abs(m2_a)));
  }
}

TEST(GyrationTensor, LinearChainIsFullyAnisotropic) {
  // Atoms on a line: l2 = l3 = 0, kappa^2 = 1.
  std::vector<double> xyz;
  for (int i = 0; i < 8; ++i) {
    xyz.insert(xyz.end(), {static_cast<double>(i), 0.0, 0.0});
  }
  GyrationTensorKernel k;
  const AnalysisResult r = k.analyze(frame(xyz));
  ASSERT_EQ(r.values.size(), 7u);
  EXPECT_GT(r.values[0], 0.0);           // l1
  EXPECT_NEAR(r.values[1], 0.0, 1e-12);  // l2
  EXPECT_NEAR(r.values[2], 0.0, 1e-12);  // l3
  EXPECT_NEAR(r.values[6], 1.0, 1e-9);   // kappa^2
}

TEST(GyrationTensor, Rg2MatchesRgyrKernel) {
  Xoshiro256 rng(11);
  std::vector<double> xyz;
  for (int i = 0; i < 90; ++i) xyz.push_back(rng.uniform(-4.0, 4.0));
  GyrationTensorKernel k;
  const AnalysisResult r = k.analyze(frame(xyz));
  const double rg = radius_of_gyration(xyz);
  EXPECT_NEAR(r.values[3], rg * rg, 1e-9);
}

TEST(GyrationTensor, CubicSymmetryGivesNearZeroAnisotropy) {
  // The 8 corners of a cube: perfectly isotropic inertia.
  std::vector<double> xyz;
  for (int x : {-1, 1}) {
    for (int y : {-1, 1}) {
      for (int z : {-1, 1}) {
        xyz.insert(xyz.end(), {static_cast<double>(x),
                               static_cast<double>(y),
                               static_cast<double>(z)});
      }
    }
  }
  GyrationTensorKernel k;
  const AnalysisResult r = k.analyze(frame(xyz));
  EXPECT_NEAR(r.values[0], r.values[2], 1e-9);  // l1 == l3
  EXPECT_NEAR(r.values[4], 0.0, 1e-9);          // asphericity
  EXPECT_NEAR(r.values[6], 0.0, 1e-9);          // kappa^2
}

TEST(GyrationTensor, TranslationInvariant) {
  Xoshiro256 rng(12);
  std::vector<double> xyz;
  for (int i = 0; i < 60; ++i) xyz.push_back(rng.uniform(0.0, 3.0));
  std::vector<double> shifted = xyz;
  for (std::size_t i = 0; i < shifted.size(); i += 3) shifted[i] += 100.0;
  GyrationTensorKernel k;
  const auto a = k.analyze(frame(xyz));
  const auto b = k.analyze(frame(shifted));
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_NEAR(a.values[i], b.values[i], 1e-8);
  }
}

TEST(GyrationTensor, RejectsScalarPayload) {
  GyrationTensorKernel k;
  dtl::Chunk c(dtl::ChunkKey{}, dtl::PayloadKind::kScalarSeries, {1.0});
  EXPECT_THROW((void)k.analyze(c), InvalidArgument);
}

TEST(GyrationTensor, AvailableThroughFactory) {
  const auto k = make_kernel("gyration-tensor");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->name(), "gyration-tensor");
}

}  // namespace
}  // namespace wfe::ana
