// Release pass-through flavour of support/lock_rank.hpp: this TU forces
// WFENS_LOCK_RANK_FORCE_OFF (its own binary — the two flavours must not
// mix in one program), and proves the ranked names compile down to the
// plain std types with zero bookkeeping: same types, same sizes, and a
// rank inversion passes silently because there is nothing left to check.
#include "support/lock_rank.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <type_traits>

namespace ws = wfe::support;

namespace {

TEST(LockRankRelease, CheckingIsCompiledOut) {
  EXPECT_FALSE(ws::kLockRankChecked);
}

TEST(LockRankRelease, RankedTypesAreThePlainStdTypes) {
  static_assert(std::is_same_v<ws::RankedMutex<7>, std::mutex>);
  static_assert(std::is_same_v<ws::RankedMutex<40>, std::mutex>);
  static_assert(
      std::is_same_v<ws::RankGuard<std::mutex>, std::lock_guard<std::mutex>>);
  static_assert(
      std::is_same_v<ws::RankLock<std::mutex>, std::unique_lock<std::mutex>>);
  static_assert(std::is_same_v<ws::RankedCv, std::condition_variable>);
  SUCCEED();
}

TEST(LockRankRelease, ZeroSizeOverhead) {
  static_assert(sizeof(ws::RankedMutex<10>) == sizeof(std::mutex));
  SUCCEED();
}

TEST(LockRankRelease, InversionPassesWithoutChecking) {
  // The checked flavour aborts here; pass-through must sail straight
  // through (two distinct mutexes, no real deadlock in this order).
  ws::RankedMutex<30> high;
  ws::RankedMutex<10> low;
  ws::RankGuard<ws::RankedMutex<30>> a(high);
  ws::RankGuard<ws::RankedMutex<10>> b(low);
  SUCCEED();
}

TEST(LockRankRelease, CvWaitWorksWithPlainTypes) {
  ws::RankedMutex<10> m;
  ws::RankedCv cv;
  bool ready = true;
  ws::RankLock<ws::RankedMutex<10>> lock(m);
  cv.wait(lock, [&] { return ready; });
  SUCCEED();
}

}  // namespace
