// Whole-project pass tests (tools/wfens_lint: project model, layering
// manifest, static lock-rank verification, determinism taint, stale
// allows, SARIF) on in-memory fixture trees, plus the cross-checks the
// ISSUE pins against the real tree: the rank table reproduced from source
// must match docs/ANALYSIS.md, and the committed layers.conf must be
// exactly exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "wfens_lint/layers.hpp"
#include "wfens_lint/lint.hpp"
#include "wfens_lint/project.hpp"
#include "wfens_lint/ranks.hpp"

namespace lint = wfe::lint;

namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

lint::AnalyzeOptions only_layering() {
  return {.file_rules = false,
          .layering = true,
          .lock_rank = false,
          .taint = false,
          .stale_allow = false};
}

lint::AnalyzeOptions only_lock_rank() {
  return {.file_rules = false,
          .layering = false,
          .lock_rank = true,
          .taint = false,
          .stale_allow = false};
}

lint::AnalyzeOptions file_rules_and_stale_allow() {
  return {.file_rules = true,
          .layering = false,
          .lock_rank = false,
          .taint = false,
          .stale_allow = true};
}

lint::AnalyzeOptions only_taint() {
  return {.file_rules = false,
          .layering = false,
          .lock_rank = false,
          .taint = true,
          .stale_allow = false};
}

std::vector<lint::Finding> analyze(Sources sources,
                                   std::optional<std::string> manifest,
                                   const lint::AnalyzeOptions& options) {
  lint::Project project =
      lint::build_project(std::move(sources), std::move(manifest));
  return lint::analyze_project(project, options);
}

std::size_t count_rule(const std::vector<lint::Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const lint::Finding& f) { return f.rule == rule; }));
}

// -- project model -----------------------------------------------------------

TEST(ProjectModel, IncludeClosureAndHeaderTwins) {
  lint::Project p = lint::build_project({
      {"src/aa/base.hpp", "#pragma once\nint base();\n"},
      {"src/aa/base.cpp", "#include \"aa/base.hpp\"\nint base(){return 1;}\n"},
      {"src/bb/mid.hpp", "#pragma once\n#include \"aa/base.hpp\"\n"},
      {"src/cc/top.cpp", "#include \"bb/mid.hpp\"\nint t(){return base();}\n"},
  });
  const int top = p.file_index("src/cc/top.cpp");
  const int base_hpp = p.file_index("src/aa/base.hpp");
  const int base_cpp = p.file_index("src/aa/base.cpp");
  ASSERT_GE(top, 0);
  // The closure follows includes transitively; visible adds base.cpp as
  // base.hpp's implementation twin.
  EXPECT_TRUE(std::binary_search(p.closure[top].begin(),
                                 p.closure[top].end(), base_hpp));
  EXPECT_FALSE(std::binary_search(p.closure[top].begin(),
                                  p.closure[top].end(), base_cpp));
  EXPECT_TRUE(std::binary_search(p.visible[top].begin(),
                                 p.visible[top].end(), base_cpp));
  // base() in top.cpp resolves to the definition in the twin.
  const auto candidates = p.visible_functions("base", top);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(p.functions[candidates[0]].file, base_cpp);
}

TEST(ProjectModel, CallsDoNotResolveAcrossInvisibleFiles) {
  lint::Project p = lint::build_project({
      {"src/aa/x.cpp", "int helper(){return 1;}\n"},
      {"src/bb/y.cpp", "int helper(){return 2;}\nint f(){return helper();}\n"},
  });
  const int y = p.file_index("src/bb/y.cpp");
  // y.cpp does not include x.cpp, so only its own helper() is a candidate.
  const auto candidates = p.visible_functions("helper", y);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(p.functions[candidates[0]].file, y);
}

TEST(ProjectModel, ModuleMapping) {
  EXPECT_EQ(lint::module_of("src/obs/export.cpp"), "obs");
  EXPECT_EQ(lint::module_of("src/support/rng.hpp"), "support");
  EXPECT_EQ(lint::module_of("tools/wfens_lint/lint.cpp"), "tools");
  EXPECT_EQ(lint::module_of("bench/x.cpp"), "");
}

TEST(ProjectModel, MemberFunctionWithInitListScanned) {
  lint::Project p = lint::build_project({
      {"src/aa/x.cpp",
       "struct S {\n"
       "  S(int v) : v_(v), w_{v + 1} { body(); }\n"
       "  int v_, w_;\n"
       "};\n"},
  });
  const auto it = std::find_if(
      p.functions.begin(), p.functions.end(),
      [](const lint::FunctionDef& d) { return d.name == "S"; });
  ASSERT_NE(it, p.functions.end());
  EXPECT_EQ(it->line, 2);
}

// -- layering manifest -------------------------------------------------------

TEST(LintLayering, MissingManifestReported) {
  const auto fs = analyze({{"src/aa/x.cpp", "int f(){return 1;}\n"}},
                          std::nullopt, only_layering());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "layer-manifest");
  EXPECT_EQ(fs[0].file, "tools/wfens_lint/layers.conf");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(LintLayering, UndeclaredEdgeReportedAtTheInclude) {
  const auto fs = analyze(
      {{"src/aa/low.hpp", "#pragma once\n"},
       {"src/bb/high.cpp", "// uses aa\n#include \"aa/low.hpp\"\n"}},
      "module aa\nmodule bb\n", only_layering());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "layer-undeclared-edge");
  EXPECT_EQ(fs[0].file, "src/bb/high.cpp");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_NE(fs[0].message.find("bb -> aa"), std::string::npos);
}

TEST(LintLayering, DeclaredEdgeIsClean) {
  const auto fs = analyze(
      {{"src/aa/low.hpp", "#pragma once\n"},
       {"src/bb/high.cpp", "#include \"aa/low.hpp\"\n"}},
      "module aa\nmodule bb\nedge bb -> aa\n", only_layering());
  EXPECT_TRUE(fs.empty());
}

TEST(LintLayering, StaleEdgeReportedAtTheManifestLine) {
  const auto fs = analyze({{"src/aa/x.cpp", "int f(){return 1;}\n"},
                           {"src/bb/y.cpp", "int g(){return 2;}\n"}},
                          "module aa\nmodule bb\nedge bb -> aa\n",
                          only_layering());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "layer-stale-edge");
  EXPECT_EQ(fs[0].file, "tools/wfens_lint/layers.conf");
  EXPECT_EQ(fs[0].line, 3);
}

TEST(LintLayering, UpwardEdgeRejectedByTheParser) {
  // aa is declared below bb, so aa -> bb points upward: the declaration
  // order IS the layering.
  const auto fs = analyze(
      {{"src/aa/x.cpp", "#include \"bb/y.hpp\"\n"},
       {"src/bb/y.hpp", "#pragma once\n"}},
      "module aa\nmodule bb\nedge aa -> bb\n", only_layering());
  EXPECT_EQ(count_rule(fs, "layer-manifest"), 1u);
  // The edge declaration is void, so the include is also undeclared.
  EXPECT_EQ(count_rule(fs, "layer-undeclared-edge"), 1u);
}

TEST(LintLayering, IncludeCycleReported) {
  const auto fs = analyze(
      {{"src/aa/x.hpp", "#pragma once\n#include \"bb/y.hpp\"\n"},
       {"src/bb/y.hpp", "#pragma once\n#include \"aa/x.hpp\"\n"}},
      "module aa\nmodule bb\n", only_layering());
  EXPECT_EQ(count_rule(fs, "layer-cycle"), 1u);
  EXPECT_EQ(count_rule(fs, "layer-undeclared-edge"), 2u);
  const auto it = std::find_if(
      fs.begin(), fs.end(),
      [](const lint::Finding& f) { return f.rule == "layer-cycle"; });
  EXPECT_NE(it->message.find("aa"), std::string::npos);
  EXPECT_NE(it->message.find("bb"), std::string::npos);
}

TEST(LintLayering, UnknownModuleReportedOncePerModule) {
  const auto fs = analyze({{"src/zz/a.cpp", "int f(){return 1;}\n"},
                           {"src/zz/b.cpp", "int g(){return 2;}\n"}},
                          "module aa\n", only_layering());
  EXPECT_EQ(count_rule(fs, "layer-unknown-module"), 1u);
}

TEST(LintLayering, ManifestSyntaxErrorsReported) {
  std::vector<lint::Finding> fs;
  lint::parse_layer_manifest(
      "module aa extra\n"   // bad module line
      "module aa\n"         // fine (first valid declaration)
      "module aa\n"         // duplicate
      "edge aa => aa\n"     // bad arrow
      "edge aa -> zz\n"     // undeclared module
      "nonsense\n",         // unknown directive
      "layers.conf", fs);
  EXPECT_EQ(fs.size(), 5u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "layer-manifest");
}

TEST(LintLayering, CommittedManifestMatchesTheTreeExactly) {
  // The acceptance bar: the real tree produces no layer findings at all,
  // which simultaneously proves every declared edge is exercised (no
  // stale-edge) and every observed edge is declared (no undeclared-edge).
  lint::Project project = lint::load_project(WFENS_REPO_ROOT);
  ASSERT_TRUE(project.manifest_text.has_value())
      << "tools/wfens_lint/layers.conf is missing";
  std::vector<lint::Finding> fs;
  lint::run_layering_pass(project, fs);
  for (const auto& f : fs) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

// -- static lock-rank verification -------------------------------------------

// A minimal rank world: two ranks, aliases in the header, definitions and
// uses split across header/impl the way the real tree writes them.
Sources rank_fixture(const std::string& impl_body) {
  return {
      {"src/aa/locks.hpp",
       "#pragma once\n"
       "inline constexpr int kRankLow = 10;\n"
       "inline constexpr int kRankHigh = 20;\n"
       "using LowMutex = RankedMutex<kRankLow>;\n"
       "using HighMutex = RankedMutex<kRankHigh>;\n"},
      {"src/aa/impl.cpp",
       "#include \"aa/locks.hpp\"\n"
       "LowMutex low_m;\n"
       "HighMutex high_m;\n" +
           impl_body},
  };
}

TEST(LintLockRank, DirectInversionInOneFunction) {
  const auto fs = analyze(
      rank_fixture("void f() {\n"
                   "  RankGuard<HighMutex> a(high_m);\n"
                   "  RankGuard<LowMutex> b(low_m);\n"
                   "}\n"),
      std::nullopt, only_lock_rank());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lock-rank-static");
  EXPECT_EQ(fs[0].file, "src/aa/impl.cpp");
  EXPECT_NE(fs[0].message.find("rank 10"), std::string::npos);
  EXPECT_NE(fs[0].message.find("rank 20"), std::string::npos);
}

TEST(LintLockRank, InversionThroughOneCallLevel) {
  // The case the runtime checker only catches when the path executes: f
  // holds rank 20 and calls g, which acquires rank 10.
  const auto fs = analyze(
      rank_fixture("void g() { RankGuard<LowMutex> lock(low_m); }\n"
                   "void f() {\n"
                   "  RankGuard<HighMutex> lock(high_m);\n"
                   "  g();\n"
                   "}\n"),
      std::nullopt, only_lock_rank());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lock-rank-static");
  EXPECT_EQ(fs[0].line, 7);  // the call to g()
  // Both source sites are named: the reachable acquisition and the held
  // lock's own site.
  EXPECT_NE(fs[0].message.find("g()"), std::string::npos);
  EXPECT_NE(fs[0].message.find("src/aa/impl.cpp:4"), std::string::npos);
  EXPECT_NE(fs[0].message.find("src/aa/impl.cpp:6"), std::string::npos);
}

TEST(LintLockRank, IncreasingOrderIsClean) {
  const auto fs = analyze(
      rank_fixture("void g() { RankGuard<HighMutex> lock(high_m); }\n"
                   "void f() {\n"
                   "  RankGuard<LowMutex> lock(low_m);\n"
                   "  g();\n"
                   "}\n"),
      std::nullopt, only_lock_rank());
  EXPECT_TRUE(fs.empty());
}

TEST(LintLockRank, ScopeEndReleasesTheGuard) {
  const auto fs = analyze(
      rank_fixture("void f() {\n"
                   "  { RankGuard<HighMutex> a(high_m); }\n"
                   "  RankGuard<LowMutex> b(low_m);\n"
                   "}\n"),
      std::nullopt, only_lock_rank());
  EXPECT_TRUE(fs.empty());
}

TEST(LintLockRank, ManualUnlockReleasesTheGuard) {
  const auto fs = analyze(
      rank_fixture("void f() {\n"
                   "  RankLock<HighMutex> a(high_m);\n"
                   "  a.unlock();\n"
                   "  RankGuard<LowMutex> b(low_m);\n"
                   "}\n"),
      std::nullopt, only_lock_rank());
  EXPECT_TRUE(fs.empty());
}

TEST(LintLockRank, GuardAliasesResolveThroughTheHeader) {
  const auto fs = analyze(
      {{"src/aa/locks.hpp",
        "#pragma once\n"
        "inline constexpr int kRankLow = 10;\n"
        "inline constexpr int kRankHigh = 20;\n"
        "using LowMutex = RankedMutex<kRankLow>;\n"
        "using HighMutex = RankedMutex<kRankHigh>;\n"
        "using LowGuard = RankGuard<LowMutex>;\n"
        "using HighGuard = RankGuard<HighMutex>;\n"},
       {"src/aa/impl.cpp",
        "#include \"aa/locks.hpp\"\n"
        "LowMutex low_m;\n"
        "HighMutex high_m;\n"
        "void f() {\n"
        "  HighGuard a(high_m);\n"
        "  LowGuard b(low_m);\n"
        "}\n"}},
      std::nullopt, only_lock_rank());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lock-rank-static");
  EXPECT_EQ(fs[0].line, 6);
}

TEST(LintLockRank, AllowSuppressesAndCountsAsUsed) {
  lint::Project project = lint::build_project(rank_fixture(
      "void f() {\n"
      "  RankGuard<HighMutex> a(high_m);\n"
      "  // wfens-lint: allow(lock-rank-static)\n"
      "  RankGuard<LowMutex> b(low_m);\n"
      "}\n"));
  lint::AnalyzeOptions options = only_lock_rank();
  options.stale_allow = true;
  const auto fs = lint::analyze_project(project, options);
  EXPECT_TRUE(fs.empty());  // suppressed, and the annotation is not stale
}

TEST(LintLockRank, RealTreeRankModelMatchesDocumentedTable) {
  lint::Project project = lint::load_project(WFENS_REPO_ROOT);
  const lint::RankModel model = lint::extract_rank_model(project);

  // The full documented order, from source alone.
  const std::vector<int> expected{10, 15, 18, 20, 22, 25, 30, 40, 50, 55};
  EXPECT_EQ(model.rank_order(), expected);
  EXPECT_EQ(model.constants.at("kRankDtlChannel"), 10);
  EXPECT_EQ(model.constants.at("kRankDtlStaging"), 15);
  EXPECT_EQ(model.constants.at("kRankRePlanner"), 18);
  EXPECT_EQ(model.constants.at("kRankExecPool"), 20);
  EXPECT_EQ(model.constants.at("kRankEvalCache"), 22);
  EXPECT_EQ(model.constants.at("kRankMetricsTrace"), 25);
  EXPECT_EQ(model.constants.at("kRankObsRecorder"), 30);
  EXPECT_EQ(model.constants.at("kRankObsCounters"), 40);
  EXPECT_EQ(model.constants.at("kRankRunLatch"), 50);
  EXPECT_EQ(model.constants.at("kRankRunOutputs"), 55);
  EXPECT_FALSE(model.sites.empty());

  // Cross-check against the rank table in docs/ANALYSIS.md: every row
  // `| <value> | \`kRank...\` | ...` must agree with the source model.
  std::ifstream docs(std::filesystem::path(WFENS_REPO_ROOT) /
                     "docs/ANALYSIS.md");
  ASSERT_TRUE(docs.is_open());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(docs, line)) {
    const std::size_t tick = line.find("`kRank");
    if (line.find('|') != 0 || tick == std::string::npos) continue;
    const std::size_t tick2 = line.find('`', tick + 1);
    ASSERT_NE(tick2, std::string::npos);
    const std::string name = line.substr(tick + 1, tick2 - tick - 1);
    const int value = std::stoi(line.substr(1));
    ASSERT_TRUE(model.constants.count(name)) << name;
    EXPECT_EQ(model.constants.at(name), value) << name;
    ++rows;
  }
  EXPECT_EQ(rows, expected.size());
}

TEST(LintLockRank, RealTreeHasNoStaticInversions) {
  lint::Project project = lint::load_project(WFENS_REPO_ROOT);
  std::vector<lint::Finding> fs;
  lint::run_lock_rank_pass(project, fs);
  for (const auto& f : fs) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

// -- determinism taint -------------------------------------------------------

TEST(LintTaint, TaintThroughOneWrapperReported) {
  const auto fs = analyze(
      {{"src/aa/w.hpp", "#pragma once\nint jitter();\n"},
       {"src/aa/w.cpp",
        "#include \"aa/w.hpp\"\n"
        "int jitter() { return rand(); }\n"},
       {"src/bb/user.cpp",
        "#include \"aa/w.hpp\"\n"
        "int use() { return jitter(); }\n"}},
      std::nullopt, only_taint());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism-taint");
  EXPECT_EQ(fs[0].file, "src/bb/user.cpp");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_NE(fs[0].message.find("jitter()"), std::string::npos);
  EXPECT_NE(fs[0].message.find("rand at src/aa/w.cpp:2"), std::string::npos);
}

TEST(LintTaint, DirectUseIsTheBannedIdentRulesJob) {
  const auto fs =
      analyze({{"src/aa/x.cpp", "int f() { return rand(); }\n"}},
              std::nullopt, only_taint());
  EXPECT_TRUE(fs.empty());
}

TEST(LintTaint, SupportIsExempt) {
  const auto fs = analyze(
      {{"src/aa/w.hpp", "#pragma once\nint jitter();\n"},
       {"src/aa/w.cpp",
        "#include \"aa/w.hpp\"\n"
        "int jitter() { return rand(); }\n"},
       {"src/support/wrap.cpp",
        "#include \"aa/w.hpp\"\n"
        "int wrap() { return jitter(); }\n"}},
      std::nullopt, only_taint());
  EXPECT_TRUE(fs.empty());
}

TEST(LintTaint, PropagatesThroughTwoLevels) {
  const auto fs = analyze(
      {{"src/aa/w.hpp", "#pragma once\nint jitter();\nint mid();\n"},
       {"src/aa/w.cpp",
        "#include \"aa/w.hpp\"\n"
        "int jitter() { return rand(); }\n"
        "int mid() { return jitter(); }\n"},
       {"src/bb/user.cpp",
        "#include \"aa/w.hpp\"\n"
        "int use() { return mid(); }\n"}},
      std::nullopt, only_taint());
  // mid() is tainted via jitter(); use() is tainted via mid(). Both carry
  // the ultimate source in their message.
  ASSERT_EQ(fs.size(), 2u);
  for (const auto& f : fs) {
    EXPECT_EQ(f.rule, "determinism-taint");
    EXPECT_NE(f.message.find("rand at src/aa/w.cpp:2"), std::string::npos);
  }
}

TEST(LintTaint, AllowSuppresses) {
  const auto fs = analyze(
      {{"src/aa/w.hpp", "#pragma once\nint jitter();\n"},
       {"src/aa/w.cpp",
        "#include \"aa/w.hpp\"\n"
        "int jitter() { return rand(); }\n"},
       {"src/bb/user.cpp",
        "#include \"aa/w.hpp\"\n"
        "int use() { return jitter(); }  // wfens-lint: allow(determinism-taint)\n"}},
      std::nullopt, only_taint());
  EXPECT_TRUE(fs.empty());
}

// -- stale allow() sweep -----------------------------------------------------

TEST(LintStaleAllow, UnusedAnnotationFlagged) {
  lint::Project project = lint::build_project(
      {{"src/aa/x.cpp",
        "int f() { return 4; }  // wfens-lint: allow(banned-ident)\n"}});
  const auto fs =
      lint::analyze_project(project, file_rules_and_stale_allow());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "stale-allow");
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_NE(fs[0].message.find("banned-ident"), std::string::npos);
}

TEST(LintStaleAllow, UsedAnnotationNotFlagged) {
  lint::Project project = lint::build_project(
      {{"src/aa/x.cpp",
        "int f() { return rand(); }  // wfens-lint: allow(banned-ident)\n"}});
  const auto fs =
      lint::analyze_project(project, file_rules_and_stale_allow());
  EXPECT_TRUE(fs.empty());
}

TEST(LintStaleAllow, StandaloneAnnotationUsedOnNextLineNotFlagged) {
  lint::Project project = lint::build_project(
      {{"src/aa/x.cpp",
        "// wfens-lint: allow(banned-ident)\n"
        "int f() { return rand(); }\n"}});
  const auto fs =
      lint::analyze_project(project, file_rules_and_stale_allow());
  EXPECT_TRUE(fs.empty());
}

TEST(LintStaleAllow, MentioningTheSyntaxIsNotAnAnnotation) {
  // Trailing text after the closing paren makes it a mention (as in the
  // rule catalogue's own doc comments), so nothing is flagged stale.
  lint::Project project = lint::build_project(
      {{"src/aa/x.cpp",
        "// a comment quoting `// wfens-lint: allow(banned-ident)` syntax\n"
        "int f() { return 4; }\n"}});
  const auto fs =
      lint::analyze_project(project, file_rules_and_stale_allow());
  EXPECT_TRUE(fs.empty());
}

// -- SARIF output ------------------------------------------------------------

TEST(LintSarif, FindingsBecomeResults) {
  const std::vector<lint::Finding> fs = {
      {"src/aa/x.cpp", 3, "banned-ident", "rand() is nondeterministic"},
      {"src/bb/y.cpp", 7, "lock-rank-static", "say \"hi\"\nand more"},
  };
  const std::string sarif = lint::findings_to_sarif(fs);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"wfens_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"banned-ident\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"lock-rank-static\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/aa/x.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  // Quotes and newlines in messages are escaped.
  EXPECT_NE(sarif.find("say \\\"hi\\\"\\nand more"), std::string::npos);
}

TEST(LintSarif, EmptyFindingsStillAValidLog) {
  const std::string sarif = lint::findings_to_sarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\": []"), std::string::npos);
}

}  // namespace
