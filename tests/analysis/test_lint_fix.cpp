// Tests of `wfens_lint --fix` (tools/wfens_lint/fix.hpp): the pragma-once
// and include-parent rewrites are correct, idempotent, mask-aware, and
// leave the real tree untouched.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "wfens_lint/fix.hpp"
#include "wfens_lint/lint.hpp"
#include "wfens_lint/project.hpp"

namespace lint = wfe::lint;

namespace {

TEST(LintFix, PragmaOnceInsertedAfterDocComment) {
  const std::string before =
      "// Doc comment line one.\n"
      "// Line two.\n"
      "\n"
      "#include <vector>\n";
  const lint::FixResult fixed = lint::fix_source("src/aa/x.hpp", before);
  EXPECT_EQ(fixed.edits, 1);
  EXPECT_EQ(fixed.content,
            "// Doc comment line one.\n"
            "// Line two.\n"
            "#pragma once\n"
            "\n"
            "#include <vector>\n");
}

TEST(LintFix, PragmaOnceInsertedAtTopWithoutDocComment) {
  const lint::FixResult fixed =
      lint::fix_source("src/aa/x.hpp", "int f();\n");
  EXPECT_EQ(fixed.edits, 1);
  EXPECT_EQ(fixed.content, "#pragma once\nint f();\n");
}

TEST(LintFix, PragmaOnceNotInsertedInCppOrWhenPresent) {
  EXPECT_EQ(lint::fix_source("src/aa/x.cpp", "int f(){return 1;}\n").edits,
            0);
  EXPECT_EQ(
      lint::fix_source("src/aa/x.hpp", "#pragma once\nint f();\n").edits, 0);
}

TEST(LintFix, CommentedPragmaOnceDoesNotCount) {
  const lint::FixResult fixed = lint::fix_source(
      "src/aa/x.hpp", "/* #pragma once */\nint f();\n");
  EXPECT_EQ(fixed.edits, 1);
  EXPECT_EQ(fixed.content, "#pragma once\n/* #pragma once */\nint f();\n");
}

TEST(LintFix, ParentIncludeRewrittenToRootedPath) {
  const lint::FixResult fixed = lint::fix_source(
      "src/aa/x.cpp", "#include \"../bb/y.hpp\"\nint f(){return 1;}\n");
  EXPECT_EQ(fixed.edits, 1);
  EXPECT_EQ(fixed.content,
            "#include \"bb/y.hpp\"\nint f(){return 1;}\n");
}

TEST(LintFix, ParentIncludeFromToolsSubdirectory) {
  const lint::FixResult fixed = lint::fix_source(
      "tools/wfens_lint/x.cpp", "#include \"../helper.hpp\"\n");
  EXPECT_EQ(fixed.edits, 1);
  EXPECT_EQ(fixed.content, "#include \"helper.hpp\"\n");
}

TEST(LintFix, DoubleParentHopResolved) {
  const lint::FixResult fixed = lint::fix_source(
      "src/aa/deep/x.cpp", "#include \"../../bb/y.hpp\"\n");
  EXPECT_EQ(fixed.edits, 1);
  EXPECT_EQ(fixed.content, "#include \"bb/y.hpp\"\n");
}

TEST(LintFix, IncludeInsideCommentOrStringUntouched) {
  const std::string before =
      "// #include \"../bb/y.hpp\"\n"
      "const char* s = \"#include \\\"../bb/y.hpp\\\"\";\n";
  const lint::FixResult fixed = lint::fix_source("src/aa/x.cpp", before);
  EXPECT_EQ(fixed.edits, 0);
  EXPECT_EQ(fixed.content, before);
}

TEST(LintFix, FixIsIdempotent) {
  const std::string before =
      "// Doc.\n"
      "#include \"../bb/y.hpp\"\n"
      "int f();\n";
  const lint::FixResult once = lint::fix_source("src/aa/x.hpp", before);
  EXPECT_EQ(once.edits, 2);  // pragma + include
  const lint::FixResult twice =
      lint::fix_source("src/aa/x.hpp", once.content);
  EXPECT_EQ(twice.edits, 0);
  EXPECT_EQ(twice.content, once.content);
}

TEST(LintFix, FixedSourceLintsCleanForBothRules) {
  const std::string before = "#include \"../bb/y.hpp\"\nint f();\n";
  const lint::FixResult fixed = lint::fix_source("src/aa/x.hpp", before);
  for (const auto& f : lint::lint_source("src/aa/x.hpp", fixed.content)) {
    EXPECT_NE(f.rule, "pragma-once") << f.message;
    EXPECT_NE(f.rule, "include-parent") << f.message;
  }
}

TEST(LintFix, FixTreeRewritesOnlyBrokenFilesAndConverges) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "wfens_fix_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src/aa");
  fs::create_directories(root / "src/bb");
  const auto write = [](const fs::path& p, const std::string& text) {
    std::ofstream out(p);
    out << text;
  };
  write(root / "src/aa/broken.hpp", "#include \"../bb/y.hpp\"\n");
  write(root / "src/bb/y.hpp", "#pragma once\nint y();\n");

  EXPECT_EQ(lint::fix_tree(root), 1);
  std::ifstream in(root / "src/aa/broken.hpp");
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "#pragma once\n#include \"bb/y.hpp\"\n");
  // Second run: nothing left to do.
  EXPECT_EQ(lint::fix_tree(root), 0);
  fs::remove_all(root);
}

TEST(LintFix, RealTreeNeedsNoFixes) {
  // --fix on the committed tree must be a no-op: the same guarantee
  // lint.tree gives for findings, for the rewriter.
  const lint::Project project = lint::load_project(WFENS_REPO_ROOT);
  for (const auto& file : project.files) {
    const lint::FixResult fixed = lint::fix_source(file.path, file.content);
    EXPECT_EQ(fixed.edits, 0) << file.path;
    EXPECT_EQ(fixed.content, file.content) << file.path;
  }
}

}  // namespace
