// The code masker (detail::code_mask) is the foundation every lint pass
// stands on: if it misclassifies one byte, identifier rules fire on prose
// or miss real code. These tests pin the documented edge cases directly
// and then fuzz the masker against an independently written reference
// implementation with deterministic Xoshiro256 streams.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"
#include "wfens_lint/lint.hpp"

namespace lint = wfe::lint;

namespace {

constexpr std::size_t npos = std::string_view::npos;

bool ref_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Length of a raw-string prefix (R, u8R, uR, UR, LR) ending just before
/// the quote at `i`, 0 when the quote is not a raw-string opener.
std::size_t ref_raw_prefix(std::string_view s, std::size_t i) {
  if (i == 0 || s[i - 1] != 'R') return 0;
  std::size_t p = i - 1;
  if (p >= 2 && s[p - 2] == 'u' && s[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 &&
             (s[p - 1] == 'u' || s[p - 1] == 'U' || s[p - 1] == 'L')) {
    p -= 1;
  }
  if (p > 0 && ref_ident_char(s[p - 1])) return 0;
  return i - p;
}

/// Reference masker: a region-oriented rewrite (find each construct's full
/// extent, blank it wholesale) instead of the production byte-at-a-time
/// state machine. Same contract: comments and literals become spaces,
/// newlines and everything else survive byte-for-byte.
std::string reference_mask(std::string_view in) {
  const std::size_t n = in.size();
  std::string out(in);
  const auto blank_range = [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };

  std::size_t i = 0;
  while (i < n) {
    if (in.compare(i, 2, "//") == 0) {
      // Line comment; a backslash-newline splice extends it.
      std::size_t j = i + 2;
      while (j < n) {
        if (in[j] == '\\' && j + 1 < n && in[j + 1] == '\n') {
          j += 2;
        } else if (in[j] == '\\' && j + 2 < n && in[j + 1] == '\r' &&
                   in[j + 2] == '\n') {
          j += 3;
        } else if (in[j] == '\n') {
          break;
        } else {
          ++j;
        }
      }
      blank_range(i, j);
      i = j;
    } else if (in.compare(i, 2, "/*") == 0) {
      std::size_t j = in.find("*/", i + 2);
      j = j == npos ? n : j + 2;
      blank_range(i, j);
      i = j;
    } else if (in[i] == '"' && ref_raw_prefix(in, i) > 0) {
      std::size_t p = i + 1;
      while (p < n && in[p] != '(') ++p;
      std::string term = ")";
      term.append(in.substr(i + 1, p - (i + 1)));
      term += '"';
      std::size_t j = p >= n ? npos : in.find(term, p + 1);
      j = j == npos ? n : j + term.size();
      blank_range(i, j);
      i = j;
    } else if (in[i] == '"' ||
               (in[i] == '\'' &&
                !(i > 0 && ref_ident_char(in[i - 1])))) {
      const char close = in[i];
      std::size_t j = i + 1;
      while (j < n) {
        if (in[j] == '\\' && j + 1 < n) {
          j += 2;
        } else {
          const bool done = in[j] == close;
          ++j;
          if (done) break;
        }
      }
      blank_range(i, j);
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

void expect_masks_agree(const std::string& in) {
  const std::string got = lint::detail::code_mask(in);
  const std::string want = reference_mask(in);
  ASSERT_EQ(got.size(), in.size());
  EXPECT_EQ(got, want) << "input: " << ::testing::PrintToString(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    // Masking only ever blanks: every surviving byte is the original, and
    // newlines always survive (line numbers stay stable).
    if (got[i] != ' ') {
      EXPECT_EQ(got[i], in[i]) << "offset " << i;
    }
    if (in[i] == '\n') {
      EXPECT_EQ(got[i], '\n') << "offset " << i;
    }
  }
}

// -- directed edge cases -----------------------------------------------------

TEST(MaskEdgeCases, RawStringWithFakeTerminatorsInside) {
  const std::string in =
      "auto s = R\"ab(content )a )x )ab stay)ab\";\nint live = 1;\n";
  expect_masks_agree(in);
  const std::string mask = lint::detail::code_mask(in);
  EXPECT_EQ(mask.find("content"), npos);
  EXPECT_EQ(mask.find("stay"), npos);
  EXPECT_NE(mask.find("int live"), npos);
}

TEST(MaskEdgeCases, PrefixedRawStrings) {
  for (const std::string prefix : {"R", "u8R", "uR", "UR", "LR"}) {
    const std::string in =
        "auto s = " + prefix + "\"(hidden rand();)\";\nint live;\n";
    expect_masks_agree(in);
    const std::string mask = lint::detail::code_mask(in);
    EXPECT_EQ(mask.find("hidden"), npos) << prefix;
    EXPECT_NE(mask.find("int live"), npos) << prefix;
  }
}

TEST(MaskEdgeCases, IdentifierEndingInRIsNotARawPrefix) {
  // myR"( opens a PLAIN string (R glued to an identifier), so its ')' is
  // inside the literal and the literal ends at the next quote.
  const std::string in = "auto x = myR\"(abc)\";\nint live;\n";
  expect_masks_agree(in);
  const std::string mask = lint::detail::code_mask(in);
  EXPECT_EQ(mask.find("abc"), npos);
  EXPECT_NE(mask.find("myR"), npos);
  EXPECT_NE(mask.find("int live"), npos);
}

TEST(MaskEdgeCases, LineContinuationExtendsLineComment) {
  const std::string in = "// note \\\nrand();\nint live;\n";
  expect_masks_agree(in);
  const std::string mask = lint::detail::code_mask(in);
  EXPECT_EQ(mask.find("rand"), npos);  // still inside the spliced comment
  EXPECT_NE(mask.find("int live"), npos);
}

TEST(MaskEdgeCases, CrLfLineContinuationExtendsLineComment) {
  const std::string in = "// note \\\r\nrand();\r\nint live;\r\n";
  expect_masks_agree(in);
  const std::string mask = lint::detail::code_mask(in);
  EXPECT_EQ(mask.find("rand"), npos);
  EXPECT_NE(mask.find("int live"), npos);
}

TEST(MaskEdgeCases, AdjacentStringLiteralsConcatenated) {
  const std::string in =
      "const char* s = \"abc\" \"def\" \"g\\\"h\";\nint live;\n";
  expect_masks_agree(in);
  const std::string mask = lint::detail::code_mask(in);
  EXPECT_EQ(mask.find("abc"), npos);
  EXPECT_EQ(mask.find("def"), npos);
  EXPECT_EQ(mask.find("g\\\"h"), npos);
  EXPECT_NE(mask.find("const char* s"), npos);
  EXPECT_NE(mask.find("int live"), npos);
}

TEST(MaskEdgeCases, DigitSeparatorsAreNotCharLiterals) {
  const std::string in = "int n = 1'000'000;\nint live;\n";
  expect_masks_agree(in);
  EXPECT_EQ(lint::detail::code_mask(in), in);  // nothing to blank
}

TEST(MaskEdgeCases, UnterminatedConstructsBlankToEndOfFile) {
  const std::vector<std::string> cases = {
      "int a; /* open\nnever closed",
      "int a; \"open\nstill string",
      "int a; R\"xy(open\nnever closed",
      "int a; R\"noparen",
  };
  for (const std::string& in : cases) expect_masks_agree(in);
}

// -- fuzz against the reference ----------------------------------------------

TEST(MaskFuzz, AgreesWithReferenceOnRandomTokenSoup) {
  // Token soup biased toward the masker's state transitions: quote kinds,
  // raw-string delimiters (with fake terminators), splices, CR/LF.
  static const std::vector<std::string> kTokens = {
      "a",      "bb_c",  " ",     "\n",     "\r\n",  "\"",    "'",
      "\\",     "\\\n",  "/",     "//",     "/*",    "*/",    "R\"(",
      ")\"",    "R\"ab(", ")ab\"", "u8R\"(", "LR\"",  "(",     ")",
      "0",      "1'000", "rand",  ";",      "=",     "R",     "*",
      "myR\"(", "\\\"",  "'x'",   "\"s\"",
  };
  wfe::Xoshiro256 rng(20260809u);
  for (int round = 0; round < 400; ++round) {
    std::string in;
    const std::size_t tokens = 20 + rng.below(120);
    for (std::size_t t = 0; t < tokens; ++t) {
      in += kTokens[rng.below(kTokens.size())];
    }
    expect_masks_agree(in);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
