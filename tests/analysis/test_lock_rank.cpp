// Self-tests of the lock-rank deadlock checker (support/lock_rank.hpp),
// checked flavour: in-order acquisition passes, rank inversion and
// re-entrancy abort with both sites in the message (death tests), and the
// bookkeeping stays truthful across condition-variable waits and
// out-of-stack-order unlocks.
#include "support/lock_rank.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ws = wfe::support;

namespace {

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ws::kLockRankChecked) {
      GTEST_SKIP() << "lock-rank checking compiled out in this build";
    }
    // Death tests fork; with threads potentially alive in the parent the
    // threadsafe style (re-exec instead of plain fork) is the safe one.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

using LockRankDeathTest = LockRankTest;

TEST_F(LockRankTest, InOrderAcquisitionPasses) {
  ws::RankedMutex<10> low;
  ws::RankedMutex<30> high;
  int witnessed = 0;
  {
    ws::RankGuard<ws::RankedMutex<10>> a(low);
    ws::RankGuard<ws::RankedMutex<30>> b(high);
    witnessed = 1;
  }
  // Release order does not matter; re-acquiring after full release is fine.
  {
    ws::RankGuard<ws::RankedMutex<30>> b(high);
  }
  {
    ws::RankGuard<ws::RankedMutex<10>> a(low);
  }
  EXPECT_EQ(witnessed, 1);
}

TEST_F(LockRankDeathTest, RankInversionAborts) {
  EXPECT_DEATH(
      {
        ws::RankedMutex<30> high;
        ws::RankedMutex<10> low;
        ws::RankGuard<ws::RankedMutex<30>> a(high);
        ws::RankGuard<ws::RankedMutex<10>> b(low);  // 10 while holding 30
      },
      "lock-rank violation.*acquiring rank 10.*holding rank 30");
}

TEST_F(LockRankDeathTest, ViolationReportNamesBothSites) {
  // Both acquisition sites must be real code locations (this file), not
  // the guts of <mutex>.
  EXPECT_DEATH(
      {
        ws::RankedMutex<20> outer;
        ws::RankedMutex<10> inner;
        ws::RankGuard<ws::RankedMutex<20>> a(outer);
        ws::RankGuard<ws::RankedMutex<10>> b(inner);
      },
      "test_lock_rank.cpp.*test_lock_rank.cpp");
}

TEST_F(LockRankDeathTest, SameRankReentrancyAborts) {
  EXPECT_DEATH(
      {
        ws::RankedMutex<25> a;
        ws::RankedMutex<25> b;  // distinct mutex, same rank
        ws::RankGuard<ws::RankedMutex<25>> ga(a);
        ws::RankGuard<ws::RankedMutex<25>> gb(b);
      },
      "re-entrant acquisition of the same rank");
}

TEST_F(LockRankDeathTest, TryLockHonorsRanks) {
  EXPECT_DEATH(
      {
        ws::RankedMutex<30> high;
        ws::RankedMutex<10> low;
        ws::RankGuard<ws::RankedMutex<30>> a(high);
        if (low.try_lock()) low.unlock();
      },
      "lock-rank violation.*acquiring rank 10");
}

TEST_F(LockRankTest, RankLockUnlockPopsTheRank) {
  ws::RankedMutex<30> high;
  ws::RankedMutex<10> low;
  ws::RankLock<ws::RankedMutex<30>> l(high);
  ASSERT_TRUE(l.owns_lock());
  l.unlock();
  ASSERT_FALSE(l.owns_lock());
  // With rank 30 released, taking rank 10 must pass — proving unlock()
  // really popped the held-rank stack.
  {
    ws::RankGuard<ws::RankedMutex<10>> g(low);
  }
  l.lock();
  EXPECT_TRUE(l.owns_lock());
}

TEST_F(LockRankTest, OutOfStackOrderUnlockTolerated) {
  ws::RankedMutex<10> low;
  ws::RankedMutex<20> mid;
  ws::RankLock<ws::RankedMutex<10>> a(low);
  ws::RankLock<ws::RankedMutex<20>> b(mid);
  a.unlock();  // releases the *bottom* of the held stack first
  // Thread still holds rank 20 only; acquiring rank 30 must pass.
  ws::RankedMutex<30> high;
  {
    ws::RankGuard<ws::RankedMutex<30>> g(high);
  }
  b.unlock();
}

TEST_F(LockRankTest, CvWaitKeepsBookkeepingTruthful) {
  // A worker waits on a ranked mutex; while it is parked inside the wait
  // (lock released), the main thread takes the same mutex. After wake-up
  // the worker re-holds the rank and can still lock upward. Any
  // bookkeeping drift would abort one of the acquisitions.
  ws::RankedMutex<10> m;
  ws::RankedCv cv;
  bool go = false;
  std::atomic<bool> worker_done{false};

  std::thread worker([&] {
    ws::RankLock<ws::RankedMutex<10>> lock(m);
    cv.wait(lock, [&] { return go; });
    ws::RankedMutex<30> high;
    {
      ws::RankGuard<ws::RankedMutex<30>> g(high);  // 30 over held 10: fine
    }
    worker_done.store(true);
  });

  {
    ws::RankLock<ws::RankedMutex<10>> lock(m);
    go = true;
  }
  cv.notify_one();
  worker.join();
  EXPECT_TRUE(worker_done.load());
}

TEST_F(LockRankTest, RanksAreIndependentPerThread) {
  // Thread A holding a high rank must not poison thread B's stack.
  ws::RankedMutex<30> high;
  ws::RankedMutex<10> low;
  ws::RankGuard<ws::RankedMutex<30>> a(high);
  std::thread other([&] {
    ws::RankGuard<ws::RankedMutex<10>> b(low);  // fresh thread: fine
  });
  other.join();
  SUCCEED();
}

TEST_F(LockRankTest, ProjectRankTableIsStrictlyOrdered) {
  // The documented acquisition chains must be strictly increasing.
  static_assert(ws::kRankDtlChannel < ws::kRankObsRecorder);
  static_assert(ws::kRankDtlChannel < ws::kRankObsCounters);
  static_assert(ws::kRankObsRecorder < ws::kRankObsCounters);
  static_assert(ws::kRankDtlChannel < ws::kRankDtlStaging);
  static_assert(ws::kRankExecPool < ws::kRankObsRecorder);
  static_assert(ws::kRankExecPool < ws::kRankEvalCache);
  static_assert(ws::kRankEvalCache < ws::kRankMetricsTrace);
  static_assert(ws::kRankMetricsTrace < ws::kRankObsRecorder);
  static_assert(ws::kRankRunLatch < ws::kRankRunOutputs);
  SUCCEED();
}

}  // namespace
