// Analysis-kernel correctness: bipartite eigenvalue against closed forms,
// RMSD/rgyr/contacts against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bipartite_eigen.hpp"
#include "analysis/contact_map.hpp"
#include "analysis/kernel.hpp"
#include "analysis/rgyr.hpp"
#include "analysis/rmsd.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::ana {
namespace {

dtl::Chunk frame(std::vector<double> xyz, std::uint64_t step = 0) {
  return dtl::Chunk(dtl::ChunkKey{0, step}, dtl::PayloadKind::kPositions3N,
                    std::move(xyz));
}

// ---------------------------------------------------------------- bipartite

TEST(LargestSingularValue, IdentityMatrix) {
  // 2x2 identity: largest singular value 1.
  EXPECT_NEAR(largest_singular_value({1, 0, 0, 1}, 2, 2, 50, 1), 1.0, 1e-9);
}

TEST(LargestSingularValue, RankOneMatrix) {
  // B = u v^T with |u| = sqrt(2), |v| = sqrt(5): sigma = sqrt(10).
  const std::vector<double> b{1 * 1.0, 1 * 2.0, 1 * 1.0, 1 * 2.0};
  EXPECT_NEAR(largest_singular_value(b, 2, 2, 60, 1), std::sqrt(10.0), 1e-9);
}

TEST(LargestSingularValue, DiagonalMatrixPicksLargest) {
  const std::vector<double> b{3, 0, 0, 0, 7, 0, 0, 0, 5};
  EXPECT_NEAR(largest_singular_value(b, 3, 3, 100, 2), 7.0, 1e-6);
}

TEST(LargestSingularValue, RectangularMatrix) {
  // B = [1 0 0; 0 2 0]: sigma = 2.
  const std::vector<double> b{1, 0, 0, 0, 2, 0};
  EXPECT_NEAR(largest_singular_value(b, 2, 3, 80, 3), 2.0, 1e-9);
}

TEST(LargestSingularValue, ZeroMatrixGivesZero) {
  EXPECT_EQ(largest_singular_value({0, 0, 0, 0}, 2, 2, 10, 1), 0.0);
}

TEST(LargestSingularValue, RejectsSizeMismatch) {
  EXPECT_THROW((void)largest_singular_value({1, 2, 3}, 2, 2, 10, 1),
               InvalidArgument);
}

TEST(LargestSingularValue, DeterministicAcrossCalls) {
  Xoshiro256 rng(4);
  std::vector<double> b(30 * 40);
  for (auto& x : b) x = rng.uniform(0.0, 5.0);
  EXPECT_EQ(largest_singular_value(b, 30, 40, 25, 9),
            largest_singular_value(b, 30, 40, 25, 9));
}

TEST(BipartiteEigenKernel, RejectsScalarPayload) {
  BipartiteEigenKernel k;
  dtl::Chunk c(dtl::ChunkKey{}, dtl::PayloadKind::kScalarSeries, {1, 2, 3});
  EXPECT_THROW((void)k.analyze(c), InvalidArgument);
}

TEST(BipartiteEigenKernel, KnownTwoAtomFrame) {
  // Two atoms at distance 3: B = [3], sigma = 3.
  BipartiteEigenKernel k;
  const AnalysisResult r = k.analyze(frame({0, 0, 0, 3, 0, 0}));
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 3.0, 1e-9);
  EXPECT_EQ(r.values[1], 1.0);  // n1
  EXPECT_EQ(r.values[2], 1.0);  // n2
}

TEST(BipartiteEigenKernel, SigmaBoundedByFrobeniusNorm) {
  Xoshiro256 rng(6);
  std::vector<double> xyz;
  for (int i = 0; i < 60; ++i) xyz.push_back(rng.uniform(0.0, 10.0));
  BipartiteEigenKernel k;
  const AnalysisResult r = k.analyze(frame(xyz));
  // sigma_max <= ||B||_F; compute Frobenius norm by hand.
  const std::size_t atoms = 20;
  const std::size_t n1 = atoms / 2;
  double frob2 = 0.0;
  for (std::size_t i = 0; i < n1; ++i) {
    for (std::size_t j = n1; j < atoms; ++j) {
      const double dx = xyz[i * 3] - xyz[j * 3];
      const double dy = xyz[i * 3 + 1] - xyz[j * 3 + 1];
      const double dz = xyz[i * 3 + 2] - xyz[j * 3 + 2];
      frob2 += dx * dx + dy * dy + dz * dz;
    }
  }
  EXPECT_LE(r.values[0], std::sqrt(frob2) + 1e-9);
  EXPECT_GT(r.values[0], 0.0);
}

TEST(BipartiteEigenKernel, SubsamplingShrinksPartitions) {
  BipartiteEigenConfig cfg;
  cfg.subsample_stride = 2;
  BipartiteEigenKernel k(cfg);
  std::vector<double> xyz(16 * 3, 1.0);
  for (std::size_t i = 0; i < xyz.size(); i += 3) {
    xyz[i] = static_cast<double>(i);
  }
  const AnalysisResult r = k.analyze(frame(xyz));
  EXPECT_EQ(r.values[1] + r.values[2], 8.0);  // 16 atoms / stride 2
}

TEST(BipartiteEigenKernel, RecordsStep) {
  BipartiteEigenKernel k;
  const AnalysisResult r = k.analyze(frame({0, 0, 0, 1, 0, 0}, 42));
  EXPECT_EQ(r.step, 42u);
  EXPECT_EQ(r.kernel, "bipartite-eigen");
}

// --------------------------------------------------------------------- rmsd

TEST(Rmsd, IdenticalFramesGiveZero) {
  const std::vector<double> a{1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(centered_rmsd(a, a), 0.0);
}

TEST(Rmsd, TranslationInvariant) {
  const std::vector<double> a{0, 0, 0, 1, 0, 0, 0, 1, 0};
  std::vector<double> b = a;
  for (std::size_t i = 0; i < b.size(); i += 3) {
    b[i] += 5.0;
    b[i + 1] -= 2.0;
  }
  EXPECT_NEAR(centered_rmsd(a, b), 0.0, 1e-12);
}

TEST(Rmsd, KnownDisplacement) {
  // Two atoms; move them +d and -d along x: centered displacement is d
  // per atom -> rmsd = d.
  const std::vector<double> a{0, 0, 0, 2, 0, 0};
  const std::vector<double> b{-0.5, 0, 0, 2.5, 0, 0};
  EXPECT_NEAR(centered_rmsd(a, b), 0.5, 1e-12);
}

TEST(Rmsd, RejectsMismatchedSizes) {
  EXPECT_THROW((void)centered_rmsd(std::vector<double>{1, 2, 3},
                                   std::vector<double>{1, 2, 3, 4, 5, 6}),
               InvalidArgument);
}

TEST(RmsdKernel, FirstFrameBecomesReference) {
  RmsdKernel k;
  EXPECT_FALSE(k.has_reference());
  const AnalysisResult r0 = k.analyze(frame({0, 0, 0, 1, 1, 1}));
  EXPECT_TRUE(k.has_reference());
  EXPECT_EQ(r0.values[0], 0.0);
  const AnalysisResult r1 = k.analyze(frame({0, 0, 0, 2, 2, 2}, 1));
  EXPECT_GT(r1.values[0], 0.0);
}

TEST(RmsdKernel, RejectsFrameSizeChange) {
  RmsdKernel k;
  (void)k.analyze(frame({0, 0, 0, 1, 1, 1}));
  EXPECT_THROW((void)k.analyze(frame({0, 0, 0})), InvalidArgument);
}

// --------------------------------------------------------------------- rgyr

TEST(Rgyr, SingleAtomIsZero) {
  EXPECT_DOUBLE_EQ(radius_of_gyration(std::vector<double>{5, 5, 5}), 0.0);
}

TEST(Rgyr, SymmetricPairKnownValue) {
  // Atoms at +-1 along x: centroid 0, rgyr = 1.
  EXPECT_DOUBLE_EQ(
      radius_of_gyration(std::vector<double>{-1, 0, 0, 1, 0, 0}), 1.0);
}

TEST(Rgyr, TranslationInvariant) {
  const std::vector<double> a{-1, 0, 0, 1, 0, 0};
  std::vector<double> b = a;
  for (std::size_t i = 2; i < b.size(); i += 3) b[i] += 7.0;
  EXPECT_NEAR(radius_of_gyration(a), radius_of_gyration(b), 1e-12);
}

TEST(Rgyr, GrowsWithSpread) {
  EXPECT_LT(radius_of_gyration(std::vector<double>{-1, 0, 0, 1, 0, 0}),
            radius_of_gyration(std::vector<double>{-2, 0, 0, 2, 0, 0}));
}

TEST(RgyrKernel, AnalyzesFrames) {
  RgyrKernel k;
  const AnalysisResult r = k.analyze(frame({-1, 0, 0, 1, 0, 0}, 3));
  EXPECT_EQ(r.kernel, "rgyr");
  EXPECT_EQ(r.step, 3u);
  EXPECT_DOUBLE_EQ(r.values[0], 1.0);
}

// ----------------------------------------------------------------- contacts

TEST(Contacts, CountsPairsWithinCutoff) {
  ContactMapConfig cfg;
  cfg.cutoff = 1.5;
  ContactMapKernel k(cfg);
  // Three atoms in a line at 0, 1, 2: contacts (0,1) and (1,2).
  const AnalysisResult r =
      k.analyze(frame({0, 0, 0, 1, 0, 0, 2, 0, 0}));
  EXPECT_EQ(r.values[0], 2.0);
  EXPECT_NEAR(r.values[1], 2.0 / 3.0, 1e-12);
}

TEST(Contacts, NoContactsWhenSparse) {
  ContactMapConfig cfg;
  cfg.cutoff = 0.5;
  ContactMapKernel k(cfg);
  const AnalysisResult r = k.analyze(frame({0, 0, 0, 5, 0, 0}));
  EXPECT_EQ(r.values[0], 0.0);
}

TEST(Contacts, RejectsBadConfig) {
  ContactMapConfig cfg;
  cfg.cutoff = -1.0;
  EXPECT_THROW(ContactMapKernel{cfg}, InvalidArgument);
}

// ------------------------------------------------------------------ factory

TEST(KernelFactory, CreatesAllKnownKernels) {
  for (const char* name :
       {"bipartite-eigen", "rmsd", "rgyr", "contacts"}) {
    const auto kernel = make_kernel(name);
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel->name(), name);
  }
}

TEST(KernelFactory, RejectsUnknownName) {
  EXPECT_THROW((void)make_kernel("fourier"), InvalidArgument);
}

}  // namespace
}  // namespace wfe::ana
