// Tests for the work-queue thread pool used by the placement search.
//
// These tests also run under ThreadSanitizer (tools/check_sanitize.sh
// thread), so they deliberately hammer the claim/check-out protocol.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace wfe::exec {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.threads(), threads);
    std::vector<int> hits(1000, 0);
    pool.for_each_index(hits.size(),
                        [&](std::size_t i, int) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << "threads=" << threads;
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.for_each_index(0, [&](std::size_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SingleThreadRunsInlineInIndexOrder) {
  // threads == 1 is the sequential reference: strict index order, caller's
  // thread, worker id always 0.
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.for_each_index(16, [&](std::size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.for_each_index(512, [&](std::size_t, int worker) {
    if (worker < 0 || worker >= 3) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(ThreadPool, PerWorkerSlotsNeverRace) {
  // One accumulator per worker id — the pattern BatchEvaluator relies on.
  // TSan verifies there is no sharing; the sum verifies nothing was lost.
  ThreadPool pool(4);
  std::vector<std::uint64_t> per_worker(4, 0);
  pool.for_each_index(10000, [&](std::size_t i, int worker) {
    per_worker[static_cast<std::size_t>(worker)] += i + 1;
  });
  const std::uint64_t total =
      std::accumulate(per_worker.begin(), per_worker.end(), std::uint64_t{0});
  EXPECT_EQ(total, 10000ull * 10001ull / 2);
}

TEST(ThreadPool, BackToBackBatchesDoNotBleedIntoEachOther) {
  // Regression for the stale-worker race: a worker finishing batch k late
  // must not claim indices of batch k+1 with batch k's function.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    const int marker = round + 1;
    pool.for_each_index(17, [&](std::size_t, int) {
      sum.fetch_add(marker, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 17 * marker) << "round " << round;
  }
}

TEST(ThreadPool, ResultSlotsMakeReductionDeterministic) {
  // Tasks write to their own index; the sequential reduction over slots is
  // identical for every thread count.
  std::vector<double> reference;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> slots(257, 0.0);
    pool.for_each_index(slots.size(), [&](std::size_t i, int) {
      slots[i] = static_cast<double>(i * i) * 0.5;
    });
    if (reference.empty()) {
      reference = slots;
    } else {
      EXPECT_EQ(slots, reference) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.for_each_index(100,
                          [&](std::size_t i, int) {
                            if (i == 13) throw std::runtime_error("boom");
                            completed.fetch_add(1, std::memory_order_relaxed);
                          }),
      std::runtime_error);
  // The batch drains fully; only the throwing index is missing.
  EXPECT_EQ(completed.load(), 99);
  // The pool survives and runs the next batch normally.
  std::atomic<int> after{0};
  pool.for_each_index(10, [&](std::size_t, int) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, RejectsNonPositiveThreadCounts) {
  EXPECT_THROW(ThreadPool(0), std::exception);
  EXPECT_THROW(ThreadPool(-2), std::exception);
}

TEST(ThreadPool, CallerParticipatesAsWorkerZero) {
  // Worker 0 is the calling thread by contract — every index claimed under
  // worker id 0 must execute on the caller's own thread, and ids claimed by
  // dedicated workers must not. Whether the caller WINS a ticket in any
  // one batch is a scheduling race (a worker can drain the whole batch
  // before the caller claims its first index — routinely so under TSan's
  // serialized scheduling), so batches repeat until it does.
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  bool caller_ran_something = false;
  for (int round = 0; round < 500 && !caller_ran_something; ++round) {
    // On a single-core host consecutive batches see the SAME scheduling
    // pattern (whichever worker holds the timeslice drains all 256 trivial
    // indices before the caller claims one), so losing rounds correlate;
    // sleeping re-enters the scheduler and decorrelates the next attempt.
    if (round > 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    std::mutex mutex;
    std::vector<std::pair<int, std::thread::id>> seen;
    pool.for_each_index(256, [&](std::size_t, int worker) {
      const std::lock_guard<std::mutex> lock(mutex);
      seen.emplace_back(worker, std::this_thread::get_id());
    });
    ASSERT_EQ(seen.size(), 256u);
    for (const auto& [worker, tid] : seen) {
      if (worker == 0) {
        EXPECT_EQ(tid, caller);
        caller_ran_something = true;
      } else {
        EXPECT_NE(tid, caller);
      }
    }
  }
  // The caller drains the queue alongside the crew: across the batches it
  // must have claimed at least one index.
  EXPECT_TRUE(caller_ran_something);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoThreads) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.for_each_index(32, [&](std::size_t, int worker) {
    EXPECT_EQ(worker, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ExceptionTypeAndMessageSurviveRethrow) {
  ThreadPool pool(3);
  try {
    pool.for_each_index(50, [&](std::size_t i, int) {
      if (i == 7) throw std::runtime_error("probe replay failed");
    });
    FAIL() << "expected the task's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "probe replay failed");
  }
}

TEST(ThreadPool, SurvivesRepeatedThrowingBatches) {
  // Alternate failing and clean batches on one pool: the error slot must
  // reset between batches, and no worker may be lost to a stale exception.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pool.for_each_index(20,
                                     [&](std::size_t i, int) {
                                       if (i % 5 == 0) {
                                         throw std::runtime_error("x");
                                       }
                                     }),
                 std::runtime_error);
    std::atomic<int> clean{0};
    pool.for_each_index(20, [&](std::size_t, int) {
      clean.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(clean.load(), 20) << "round " << round;
  }
}

TEST(ThreadPool, ManySmallBatchesOnManyPools) {
  // Construction/destruction churn: pools must join their crews cleanly
  // even when batches are tiny relative to the thread count.
  for (int i = 0; i < 25; ++i) {
    ThreadPool pool(1 + i % 5);
    std::atomic<int> n{0};
    pool.for_each_index(3, [&](std::size_t, int) { ++n; });
    EXPECT_EQ(n.load(), 3);
  }
}

TEST(ThreadPool, DestructionWithoutAnyBatchIsClean) {
  // A pool that never ran work must still shut its idle workers down.
  ThreadPool pool(6);
  SUCCEED();
}

}  // namespace
}  // namespace wfe::exec
