// Tests for the discrete-event engine: ordering, determinism, cancellation.
#include "simengine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace wfe::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine e;
  std::string log;
  e.schedule_at(1.0, [&] { log += 'a'; });
  e.schedule_at(1.0, [&] { log += 'b'; });
  e.schedule_at(1.0, [&] { log += 'c'; });
  e.run();
  EXPECT_EQ(log, "abc");
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(5.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, RejectsPastEvents) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(0.5, [] {}), InvalidArgument);
}

TEST(Engine, RejectsNegativeDelay) {
  Engine e;
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), InvalidArgument);
}

TEST(Engine, RejectsNonFiniteTime) {
  Engine e;
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               InvalidArgument);
  EXPECT_THROW(e.schedule_at(std::nan(""), [] {}), InvalidArgument);
}

TEST(Engine, RejectsEmptyCallback) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1.0, Engine::Callback{}), InvalidArgument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelFiredEventIsNoop) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelledEventDoesNotAdvanceClock) {
  Engine e;
  const EventId id = e.schedule_at(10.0, [] {});
  e.schedule_at(1.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.now(), 1.0);
}

TEST(Engine, StepRunsExactlyOneEvent) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
  EXPECT_EQ(e.pending(), 2u);
}

TEST(Engine, RunUntilIncludesBoundaryEvents) {
  Engine e;
  bool fired = false;
  e.schedule_at(2.0, [&] { fired = true; });
  e.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilRejectsPast) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.run_until(1.0), InvalidArgument);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, ClearDropsPendingEvents) {
  Engine e;
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  e.clear();
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(Engine, PendingCountTracksScheduleAndCancel) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, CancelAfterClearReturnsFalse) {
  // Regression: a stale id from before clear() must report "not pending",
  // not resurrect or double-count anything.
  Engine e;
  const EventId id = e.schedule_at(1.0, [] {});
  e.clear();
  EXPECT_FALSE(e.cancel(id));
  EXPECT_TRUE(e.empty());
  e.run();
  EXPECT_EQ(e.now(), 0.0);
}

TEST(Engine, ClearThenRescheduleIsClean) {
  Engine e;
  const EventId stale = e.schedule_at(50.0, [] {});
  e.clear();
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_FALSE(e.cancel(stale));  // stale id must not hit the new event
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(e.now(), 1.0);
}

TEST(Engine, MassCancellationCompactsTheHeap) {
  // Regression for the lazy-deletion leak: cancelled far-future entries
  // used to sit in the queue until the clock reached them. Fault-injection
  // kills events en masse, so the queue's internal refs must stay
  // proportional to pending().
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(e.schedule_at(1e6 + i, [] {}));
  }
  for (const EventId id : ids) EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
  // The sweep collected the corpses down to the small-queue threshold — a
  // constant, not the 1000 entries the leak would have kept resident.
  EXPECT_LT(e.refs_held(), 64u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, QueueDepthStaysBoundedUnderChurn) {
  // Steady schedule/cancel churn with a small live set: internal refs may
  // lag pending() (lazy deletion) but must stay under the sweep bound.
  Engine e;
  std::vector<EventId> live;
  for (int round = 0; round < 200; ++round) {
    live.push_back(e.schedule_at(1e9 + round, [] {}));
    if (live.size() > 8) {
      EXPECT_TRUE(e.cancel(live.front()));
      live.erase(live.begin());
    }
    ASSERT_LE(e.refs_held(), std::max<std::size_t>(64, 2 * e.pending()));
  }
  EXPECT_EQ(e.pending(), live.size());
}

TEST(Engine, QueueDepthDropsImmediatelyOnCancel) {
  // Regression: queue_depth() used to report internal queue entries, so a
  // lazily-deleted event still counted toward the depth until the clock
  // reached it. The depth is the *live* pending count and must drop the
  // moment cancel() returns.
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(e.schedule_at(1e3 + i, [] {}));
  }
  EXPECT_EQ(e.queue_depth(), 100u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(e.cancel(ids[i]));
    ASSERT_EQ(e.queue_depth(), 100u - i - 1);  // immediate, not lazy
  }
  EXPECT_EQ(e.queue_depth(), 0u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CancelDuringMassChurnKeepsOrdering) {
  // Cancelling interleaved with firing must not disturb (time, seq) order.
  Engine e;
  std::vector<int> order;
  std::vector<EventId> cancel_me;
  for (int i = 0; i < 50; ++i) {
    e.schedule_at(i + 1.0, [&order, i] { order.push_back(i); });
    cancel_me.push_back(
        e.schedule_at(i + 1.5, [&order] { order.push_back(-1); }));
  }
  for (const EventId id : cancel_me) e.cancel(id);
  e.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, StaleHandleCannotCancelRecycledSlot) {
  // After an event fires or is cancelled its slot is recycled for new
  // events; the generation stamp must make the old handle inert instead of
  // cancelling the slot's new occupant.
  Engine e;
  int fired = 0;
  const EventId first = e.schedule_at(1.0, [&] { ++fired; });
  ASSERT_TRUE(e.cancel(first));
  // The freed slot is reused immediately.
  const EventId second = e.schedule_at(2.0, [&] { fired += 10; });
  EXPECT_FALSE(e.cancel(first));  // stale generation: no-op
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(e.cancel(second));  // already fired
}

TEST(Engine, DefaultEventIdNeverCancels) {
  // EventId{} (value 0) must never alias a live event, even the very first
  // one scheduled on a fresh engine.
  Engine e;
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_FALSE(e.cancel(EventId{}));
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, HandlesStayDistinctAcrossHeavySlotReuse) {
  // Thousands of schedule/cancel cycles funnel through a handful of slots;
  // every handle must stay bound to exactly its own event.
  Engine e;
  for (int round = 0; round < 5000; ++round) {
    const EventId id = e.schedule_at(1e6, [] {});
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.cancel(id));
  }
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ZeroDelaySelfSchedulingTerminates) {
  // Events at the same timestamp run FIFO, so a zero-delay chain still
  // drains in bounded steps.
  Engine e;
  int n = 0;
  std::function<void()> f = [&] {
    if (++n < 100) e.schedule_in(0.0, f);
  };
  e.schedule_at(0.0, f);
  e.run();
  EXPECT_EQ(n, 100);
  EXPECT_EQ(e.now(), 0.0);
}

}  // namespace
}  // namespace wfe::sim
