// Tests for the LP-partitioned parallel runtime (simengine/parallel.hpp):
// merge order vs the sequential engine, conservative-window invariance,
// LP-aware telemetry aggregation, and misuse detection.
#include "simengine/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "simengine/engine.hpp"
#include "support/error.hpp"

namespace wfe::sim {
namespace {

/// One dispatched event, as seen by either engine's visitation.
struct Seen {
  std::size_t lane;
  SimTime time;
  std::size_t depth;  ///< pending events after the dispatch
  friend bool operator==(const Seen&, const Seen&) = default;
};

/// A deterministic cascade workload: each lane's root at `t0` schedules
/// `fanout` children `dt` apart, each child recursing one level shallower.
/// Identical code drives the sequential reference and the LP lanes, so any
/// ordering difference is the runtime's fault, not the workload's.
struct Cascade {
  SimTime t0;
  SimTime dt;
  int depth;
  int fanout;
};

void spawn(Engine& e, std::vector<Seen>* log, std::size_t lane,
           const Cascade& c, int level) {
  e.schedule_at(c.t0 + (c.depth - level) * c.dt, [&e, log, lane, c, level] {
    log->push_back({lane, e.now(), 0});
    if (level > 0) {
      for (int k = 0; k < c.fanout; ++k) {
        Cascade child = c;
        child.t0 = e.now() + c.dt * (k + 1);
        spawn(e, log, lane, child, 0);  // children are leaves
      }
      if (level > 1) {
        Cascade deeper = c;
        deeper.t0 = e.now() + c.dt / 2.0;
        spawn(e, log, lane, deeper, level - 1);
      }
    }
  });
}

/// The sequential reference: all lanes' cascades on ONE engine, roots in
/// lane order, stepped manually to record the post-dispatch queue depth.
std::vector<Seen> sequential_reference(const std::vector<Cascade>& lanes) {
  Engine e;
  std::vector<Seen> log;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    spawn(e, &log, i, lanes[i], lanes[i].depth);
  }
  while (e.step()) {
    log.back().depth = e.queue_depth();
  }
  return log;
}

/// The same workload partitioned one-cascade-per-LP, merged by replay().
std::vector<Seen> lp_run(const std::vector<Cascade>& lanes, int threads,
                         SimTime lookahead = ParallelEngine::kUnbounded) {
  ParallelEngine pe(lanes.size());
  std::vector<std::vector<Seen>> lane_log(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    Engine& e = pe.lp_engine(i);
    const Cascade c = lanes[i];
    const int level = c.depth;
    std::vector<Seen>* log = &lane_log[i];
    const std::size_t lane = i;
    // Roots go through schedule_root (global seq order); the cascade body
    // re-schedules through the lane engine directly.
    pe.schedule_root(i, c.t0, [&e, log, lane, c, level] {
      log->push_back({lane, e.now(), 0});
      if (level > 0) {
        for (int k = 0; k < c.fanout; ++k) {
          Cascade child = c;
          child.t0 = e.now() + c.dt * (k + 1);
          spawn(e, log, lane, child, 0);
        }
        if (level > 1) {
          Cascade deeper = c;
          deeper.t0 = e.now() + c.dt / 2.0;
          spawn(e, log, lane, deeper, level - 1);
        }
      }
    });
  }
  exec::ThreadPool pool(threads);
  pe.run(threads > 1 ? &pool : nullptr, lookahead);

  std::vector<Seen> merged;
  pe.replay([&](std::size_t lp, std::uint64_t index, SimTime time,
                std::size_t depth) {
    const Seen& local = lane_log[lp][index];
    EXPECT_EQ(local.time, time);
    merged.push_back({lp, time, depth});
  });
  return merged;
}

const std::vector<Cascade> kTwoLanes = {{1.0, 0.5, 2, 3}, {1.25, 0.75, 3, 2}};
const std::vector<Cascade> kFourLanes = {
    {1.0, 0.5, 2, 3}, {1.0, 0.5, 2, 3}, {0.5, 0.25, 3, 2}, {2.0, 1.0, 1, 4}};

// -- merge order --------------------------------------------------------------

TEST(ParallelEngine, SingleLaneMatchesSequential) {
  const std::vector<Cascade> one = {{1.0, 0.5, 3, 2}};
  EXPECT_EQ(lp_run(one, 1), sequential_reference(one));
}

TEST(ParallelEngine, MergeMatchesSequentialOrderAndDepths) {
  EXPECT_EQ(lp_run(kTwoLanes, 1), sequential_reference(kTwoLanes));
  EXPECT_EQ(lp_run(kFourLanes, 1), sequential_reference(kFourLanes));
}

TEST(ParallelEngine, EqualTimestampsBreakTiesByRootOrder) {
  // Lanes 0 and 1 run IDENTICAL cascades: every event collides in time
  // with its twin on the other lane, so the merge is decided purely by the
  // (time, seq) FIFO tie-break — root call order, then child seq order.
  const std::vector<Cascade> twins = {{1.0, 0.5, 2, 2}, {1.0, 0.5, 2, 2}};
  EXPECT_EQ(lp_run(twins, 1), sequential_reference(twins));
}

TEST(ParallelEngine, ThreadPoolRunMatchesInline) {
  const std::vector<Seen> expected = sequential_reference(kFourLanes);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(lp_run(kFourLanes, threads), expected)
        << "at " << threads << " threads";
  }
}

TEST(ParallelEngine, FiniteLookaheadDoesNotChangeTheMerge) {
  const std::vector<Seen> expected = sequential_reference(kFourLanes);
  for (const SimTime lookahead : {0.125, 0.5, 2.0, 100.0}) {
    EXPECT_EQ(lp_run(kFourLanes, 1, lookahead), expected)
        << "lookahead " << lookahead;
    EXPECT_EQ(lp_run(kFourLanes, 4, lookahead), expected)
        << "lookahead " << lookahead << " (pooled)";
  }
}

TEST(ParallelEngine, UnboundedLookaheadRunsOneWindow) {
  ParallelEngine pe(2);
  pe.schedule_root(0, 1.0, [] {});
  pe.schedule_root(1, 2.0, [] {});
  pe.run(nullptr);
  EXPECT_EQ(pe.windows_run(), 1u);
}

TEST(ParallelEngine, SmallLookaheadRunsManyWindowsSameResult) {
  ParallelEngine pe(2);
  std::vector<double> fired;
  Engine& e0 = pe.lp_engine(0);
  pe.schedule_root(0, 1.0, [&] {
    fired.push_back(e0.now());
    e0.schedule_in(10.0, [&] { fired.push_back(e0.now()); });
  });
  pe.schedule_root(1, 5.0, [&] { fired.push_back(-5.0); });
  pe.run(nullptr, 0.5);
  // Windows: {1.0}, {5.0}, {11.0} — one per isolated timestamp cluster.
  EXPECT_EQ(pe.windows_run(), 3u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, -5.0, 11.0}));
}

// -- LP-aware telemetry aggregation ------------------------------------------

TEST(ParallelEngine, QueueDepthSumsOverLanes) {
  ParallelEngine pe(3);
  pe.schedule_root(0, 1.0, [] {});
  pe.schedule_root(0, 2.0, [] {});
  pe.schedule_root(2, 1.0, [] {});
  EXPECT_EQ(pe.queue_depth(), 3u);
  EXPECT_EQ(pe.pending(), 3u);
  EXPECT_FALSE(pe.empty());
  // The per-lane view stays visible through lp_engine().
  EXPECT_EQ(pe.lp_engine(0).queue_depth(), 2u);
  EXPECT_EQ(pe.lp_engine(1).queue_depth(), 0u);
  EXPECT_EQ(pe.lp_engine(2).queue_depth(), 1u);
}

TEST(ParallelEngine, QueueDepthMatchesSequentialSemantics) {
  // Pin the shared semantics: queue_depth() counts LIVE pending events on
  // both engines — cancellation drops out immediately, unlike refs_held().
  Engine seq;
  const EventId a = seq.schedule_at(1.0, [] {});
  seq.schedule_at(2.0, [] {});
  seq.cancel(a);
  EXPECT_EQ(seq.queue_depth(), 1u);
  EXPECT_EQ(seq.refs_held(), 2u);  // the corpse lingers until collected

  ParallelEngine pe(2);
  const EventId b = pe.lp_engine(0).schedule_at(1.0, [] {});
  pe.schedule_root(1, 2.0, [] {});
  pe.lp_engine(0).cancel(b);
  EXPECT_EQ(pe.queue_depth(), 1u);
  EXPECT_EQ(pe.refs_held(), 2u);
}

TEST(ParallelEngine, EventsProcessedSumsOverLanes) {
  ParallelEngine pe(2);
  pe.schedule_root(0, 1.0, [] {});
  pe.schedule_root(0, 2.0, [] {});
  pe.schedule_root(1, 1.0, [] {});
  pe.run(nullptr);
  EXPECT_EQ(pe.events_processed(), 3u);
  EXPECT_EQ(pe.lp_engine(0).events_processed(), 2u);
  EXPECT_TRUE(pe.empty());
}

TEST(ParallelEngine, NowIsTheLatestLaneClock) {
  ParallelEngine pe(2);
  pe.schedule_root(0, 7.0, [] {});
  pe.schedule_root(1, 3.0, [] {});
  pe.run(nullptr);
  EXPECT_EQ(pe.now(), 7.0);
}

TEST(ParallelEngine, ReplayDepthEqualsSequentialQueueDepth) {
  // The depth handed to the replay visitor must equal what the sequential
  // engine's queue_depth() reads after the same dispatch — that is the
  // contract the traced run's queue-depth telemetry is rebuilt from.
  const std::vector<Seen> seq = sequential_reference(kTwoLanes);
  const std::vector<Seen> lp = lp_run(kTwoLanes, 1);
  ASSERT_EQ(seq.size(), lp.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].depth, lp[i].depth) << "event " << i;
  }
}

// -- boundary hook ------------------------------------------------------------

TEST(ParallelEngine, BoundaryHookFiresPerDispatchedEvent) {
  ParallelEngine pe(2);
  pe.schedule_root(0, 1.0, [] {});
  pe.schedule_root(1, 1.0, [] {});
  pe.schedule_root(1, 2.0, [] {});
  std::vector<std::pair<std::size_t, std::uint64_t>> calls;
  pe.set_boundary(
      [](void* ctx, std::size_t lp, std::uint64_t index) {
        static_cast<decltype(calls)*>(ctx)->push_back({lp, index});
      },
      &calls);
  pe.run(nullptr);
  // Inline execution order: lane 0 fully, then lane 1; indexes per lane.
  EXPECT_EQ(calls, (std::vector<std::pair<std::size_t, std::uint64_t>>{
                       {0, 0}, {1, 0}, {1, 1}}));
}

// -- misuse -------------------------------------------------------------------

TEST(ParallelEngine, ZeroLanesThrows) {
  EXPECT_THROW(ParallelEngine pe(0), Error);
}

TEST(ParallelEngine, RootOutOfRangeThrows) {
  ParallelEngine pe(2);
  EXPECT_THROW(pe.schedule_root(2, 1.0, [] {}), Error);
}

TEST(ParallelEngine, SecondRunThrows) {
  ParallelEngine pe(1);
  pe.schedule_root(0, 1.0, [] {});
  pe.run(nullptr);
  EXPECT_THROW(pe.run(nullptr), Error);
}

TEST(ParallelEngine, RootAfterRunThrows) {
  ParallelEngine pe(1);
  pe.run(nullptr);
  EXPECT_THROW(pe.schedule_root(0, 1.0, [] {}), Error);
}

TEST(ParallelEngine, NonPositiveLookaheadThrows) {
  ParallelEngine pe(1);
  EXPECT_THROW(pe.run(nullptr, 0.0), Error);
  EXPECT_THROW(pe.run(nullptr, -1.0), Error);
}

TEST(ParallelEngine, CancelledEventIsDetectedAtMerge) {
  // Cancellation desynchronizes the merge's log cursors (a seq number was
  // consumed but no event executed); the workload contract bans it, and
  // replay_order must fail loudly rather than mis-merge.
  ParallelEngine pe(1);
  Engine& e = pe.lp_engine(0);
  pe.schedule_root(0, 1.0, [&e] {
    const EventId doomed = e.schedule_in(1.0, [] {});
    e.schedule_in(2.0, [] {});
    e.cancel(doomed);
  });
  pe.run(nullptr);
  EXPECT_THROW(pe.replay([](std::size_t, std::uint64_t, SimTime,
                            std::size_t) {}),
               Error);
}

// -- peek_time / schedule log (Engine support surface for the LP runtime) ----

TEST(EngineLpSupport, PeekTimeSeesTheNextLiveEvent) {
  Engine e;
  SimTime t = -1.0;
  EXPECT_FALSE(e.peek_time(&t));
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  ASSERT_TRUE(e.peek_time(&t));
  EXPECT_EQ(t, 1.0);
  e.cancel(a);
  ASSERT_TRUE(e.peek_time(&t));
  EXPECT_EQ(t, 2.0);
  // Peeking never dispatches.
  EXPECT_EQ(e.events_processed(), 0u);
  EXPECT_EQ(e.queue_depth(), 1u);
}

TEST(EngineLpSupport, ScheduleLogRecordsTimestampsInSeqOrder) {
  Engine e;
  std::vector<SimTime> log;
  e.set_schedule_log(&log);
  e.schedule_at(3.0, [] {});
  e.schedule_at(1.0, [] {});
  e.schedule_in(0.5, [] {});
  EXPECT_EQ(log, (std::vector<SimTime>{3.0, 1.0, 0.5}));
  e.set_schedule_log(nullptr);
  e.schedule_at(9.0, [] {});
  EXPECT_EQ(log.size(), 3u);  // detached: no further appends
  e.run();
}

}  // namespace
}  // namespace wfe::sim
