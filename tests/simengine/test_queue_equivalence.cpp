// Differential fuzz of the calendar/ladder queue against a reference
// binary heap, plus arena-reuse and steady-state-allocation checks.
//
// The reference model is the semantics contract: a stable min-heap over
// (time, seq) with lazy deletion — exactly the engine's historical
// implementation. The fuzz drives both with the same randomized op stream
// (schedule / cancel / reschedule / run_until / drain) and asserts the
// dispatch orders are identical, including the FIFO seq tie-break at equal
// timestamps. Any divergence in the calendar queue's routing, splitting,
// clamping, or sweeping shows up as a mismatched pop sequence.
//
// This TU also overrides global operator new/delete with counting hooks to
// prove the zero-allocation steady-state claim in engine.hpp. The override
// is process-wide, so these hooks are deliberately trivial (relaxed atomic
// bumps around malloc/free) and the TU gets its own test binary.
#include "simengine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <queue>
#include <vector>

#include "support/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wfe::sim {
namespace {

/// The pre-calendar pending-event set: a lazy-deletion binary heap keyed
/// (time, seq). Kept minimal — this is the oracle, not a competitor.
class ReferenceHeap {
 public:
  // Returns a token for cancel(); tokens are never reused.
  std::size_t schedule(SimTime t, int payload) {
    entries_.push_back(Entry{t, next_seq_++, payload, true});
    const std::size_t token = entries_.size() - 1;
    heap_.push_back(token);
    std::push_heap(heap_.begin(), heap_.end(), Later{entries_});
    return token;
  }

  bool cancel(std::size_t token) {
    if (token >= entries_.size() || !entries_[token].live) return false;
    entries_[token].live = false;
    return true;
  }

  /// Pop live entries with time <= t, appending payloads to `out`.
  /// `t < 0` means drain everything.
  void run_until(SimTime t, std::vector<int>& out) {
    while (!heap_.empty()) {
      const Entry& top = entries_[heap_.front()];
      if (top.live && t >= 0.0 && top.time > t) break;
      std::pop_heap(heap_.begin(), heap_.end(), Later{entries_});
      const std::size_t token = heap_.back();
      heap_.pop_back();
      Entry& e = entries_[token];
      if (!e.live) continue;
      e.live = false;
      now_ = e.time;
      out.push_back(e.payload);
    }
    if (t >= 0.0) now_ = std::max(now_, t);
  }

  SimTime now() const { return now_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    int payload;
    bool live;
  };
  struct Later {
    const std::vector<Entry>& entries;
    bool operator()(std::size_t a, std::size_t b) const {
      const Entry& x = entries[a];
      const Entry& y = entries[b];
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };
  std::vector<Entry> entries_;
  std::vector<std::size_t> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime now_ = 0.0;
};

/// One fuzz round: a fresh engine + reference driven by `rounds` random
/// ops, with every dispatch recorded through a shared payload counter.
void fuzz_round(std::uint64_t seed, int ops) {
  Xoshiro256 rng(seed);
  Engine engine;
  engine.set_obs(false);
  ReferenceHeap reference;

  std::vector<int> engine_order;
  std::vector<int> reference_order;
  // Parallel arrays of live handles (kept loosely in sync; stale entries
  // are fine — cancel must agree on them too).
  std::vector<EventId> engine_ids;
  std::vector<std::size_t> reference_tokens;
  std::vector<int> payloads;
  int next_payload = 0;

  const auto schedule_one = [&](SimTime horizon) {
    const SimTime t = engine.now() + rng.uniform01() * horizon;
    const int payload = next_payload++;
    engine_ids.push_back(engine.schedule_at(
        t, [&engine_order, payload] { engine_order.push_back(payload); }));
    reference_tokens.push_back(reference.schedule(t, payload));
    payloads.push_back(payload);
  };

  for (int op = 0; op < ops; ++op) {
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // schedule: mixed horizons, heavy on the near future
        const SimTime horizon = (rng.below(4) == 0) ? 1e6 : 10.0;
        schedule_one(horizon);
        break;
      }
      case 4: {  // duplicate-timestamp burst: exercises the seq tie-break
        const SimTime t = engine.now() + rng.uniform01() * 5.0;
        for (int k = 0; k < 3; ++k) {
          const int payload = next_payload++;
          engine_ids.push_back(engine.schedule_at(
              t, [&engine_order, payload] {
                engine_order.push_back(payload);
              }));
          reference_tokens.push_back(reference.schedule(t, payload));
          payloads.push_back(payload);
        }
        break;
      }
      case 5:
      case 6: {  // cancel a (possibly stale) handle — results must agree
        if (engine_ids.empty()) break;
        const std::size_t i = rng.below(engine_ids.size());
        const bool a = engine.cancel(engine_ids[i]);
        const bool b = reference.cancel(reference_tokens[i]);
        ASSERT_EQ(a, b) << "cancel divergence at op " << op;
        break;
      }
      case 7: {  // reschedule: cancel + schedule at a new time
        if (engine_ids.empty()) break;
        const std::size_t i = rng.below(engine_ids.size());
        const bool a = engine.cancel(engine_ids[i]);
        const bool b = reference.cancel(reference_tokens[i]);
        ASSERT_EQ(a, b) << "reschedule-cancel divergence at op " << op;
        if (a) schedule_one(100.0);
        break;
      }
      case 8: {  // run_until: dispatch a prefix, clocks must track
        const SimTime t = engine.now() + rng.uniform01() * 20.0;
        engine.run_until(t);
        reference.run_until(t, reference_order);
        ASSERT_EQ(engine.now(), reference.now())
            << "clock divergence at op " << op;
        break;
      }
      case 9: {  // occasional full drain
        if (rng.below(8) != 0) {
          schedule_one(50.0);
          break;
        }
        engine.run();
        reference.run_until(-1.0, reference_order);
        break;
      }
    }
    ASSERT_EQ(engine_order, reference_order)
        << "dispatch-order divergence at op " << op << " (seed " << seed
        << ")";
  }

  engine.run();
  reference.run_until(-1.0, reference_order);
  ASSERT_EQ(engine_order, reference_order) << "final drain (seed " << seed
                                           << ")";
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(QueueEquivalence, MatchesReferenceHeapAcross10kRounds) {
  // 10k randomized rounds — short streams in bulk plus a long-stream tail.
  // Spot checks: ~1.9M dispatched events total across the sweep.
  SplitMix64 seeds(0x5eedc0de5eedc0deULL);
  for (int round = 0; round < 10000; ++round) {
    const int ops = (round % 100 == 0) ? 600 : 40;
    fuzz_round(seeds.next(), ops);
    if (HasFatalFailure()) {
      ADD_FAILURE() << "diverged in round " << round;
      return;
    }
  }
}

TEST(QueueEquivalence, SeqTieBreakSurvivesRungSplits) {
  // A large same-timestamp cohort lands in one bucket and must come back
  // out in scheduling order even though the split path sorts it wholesale.
  Engine e;
  e.set_obs(false);
  std::vector<int> order;
  // Spread enough events to force rung spawning, with a same-time cohort
  // far from the near tier.
  for (int i = 0; i < 2000; ++i) {
    e.schedule_at(1.0 + i, [] {});
  }
  for (int i = 0; i < 500; ++i) {
    e.schedule_at(777.5, [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(QueueEquivalence, ArenaRecyclesSlotsInSteadyState) {
  // A bounded-pending workload must plateau at a bounded arena: slots are
  // recycled through the free-list, not appended per event.
  Engine e;
  e.set_obs(false);
  for (int i = 0; i < 64; ++i) {
    e.schedule_at(1.0 + i, [] {});
  }
  for (int i = 0; i < 100000; ++i) {
    e.step();
    e.schedule_at(e.now() + 64.0, [] {});
  }
  EXPECT_LE(e.arena_slots(), 256u);
  EXPECT_LE(e.refs_held(), 512u);
  e.clear();
}

TEST(QueueEquivalence, CancelledHeapCallbacksAreDestroyed) {
  // A callback too large for SmallFn's inline buffer heap-allocates; a
  // cancel must destroy it immediately (checked by ASan leak detection and
  // by the capture's destructor side effect).
  struct Big {
    // > 48 bytes: forces the heap path of SmallFn.
    double payload[16] = {};
    int* counter;
    explicit Big(int* c) : counter(c) {}
    Big(Big&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    ~Big() {
      if (counter) ++*counter;
    }
    void operator()() const {}
  };
  int destroyed = 0;
  {
    Engine e;
    e.set_obs(false);
    const EventId id = e.schedule_at(1.0, Big(&destroyed));
    ASSERT_TRUE(e.cancel(id));
    EXPECT_EQ(destroyed, 1) << "cancel must release the payload eagerly";
    e.schedule_at(2.0, Big(&destroyed));
    // Engine destruction releases the arena without running anything.
  }
  EXPECT_EQ(destroyed, 2);
}

TEST(QueueEquivalence, SteadyStateReplayMakesZeroAllocations) {
  // The zero-allocation acceptance hook. Warm-up drives every vector in
  // the engine to its high-water capacity (near batches, rung pools,
  // free-list, arena); the measured window then schedules/cancels/runs a
  // comparable workload and must not touch the global allocator at all.
  //
  // Callbacks capture a single pointer (inline in SmallFn) so the payload
  // itself cannot allocate.
  Engine e;
  e.set_obs(false);
  std::uint64_t fired = 0;

  std::vector<EventId> cancellable;
  cancellable.reserve(1024);  // harness storage: not the engine's to avoid
  const auto churn = [&](int rounds) {
    Xoshiro256 rng(42);  // same stream both passes
    cancellable.clear();
    for (int i = 0; i < rounds; ++i) {
      const SimTime horizon = (rng.below(4) == 0) ? 1e5 : 10.0;
      const EventId id = e.schedule_at(
          e.now() + rng.uniform01() * horizon, [&fired] { ++fired; });
      if (rng.below(3) == 0) {
        cancellable.push_back(id);
      }
      if (cancellable.size() > 512) {
        e.cancel(cancellable[rng.below(cancellable.size())]);
        cancellable.pop_back();
      }
      if (rng.below(2) == 0) e.step();
    }
    while (e.step()) {
    }
  };

  churn(20000);  // warm-up: reach high-water capacity everywhere

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  churn(20000);  // measured: identical op stream, zero allocations
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule/cancel/run must not allocate";
  EXPECT_GT(fired, 20000u);
}

}  // namespace
}  // namespace wfe::sim
