// Tests for SmallFn, the engine's small-buffer callback type.
#include "simengine/small_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

namespace wfe::sim {
namespace {

TEST(SmallFn, DefaultIsEmpty) {
  SmallFn f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFn, InvokesSmallLambda) {
  int n = 0;
  SmallFn f([&n] { ++n; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(n, 2);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int n = 0;
  SmallFn a([&n] { ++n; });
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(n, 1);

  SmallFn c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(n, 2);
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  // unique_ptr captures force the move-only path that std::function rejects.
  auto p = std::make_unique<int>(41);
  int seen = 0;
  SmallFn f([p = std::move(p), &seen] { seen = *p + 1; });
  f();
  EXPECT_EQ(seen, 42);
}

TEST(SmallFn, LargeCapturesFallBackToHeapAndStillRun) {
  // Way past kInlineBytes: exercises the heap branch end to end
  // (construct, relocate on move, invoke, destroy).
  std::array<double, 32> big{};
  big.fill(1.5);
  double sum = 0.0;
  SmallFn f([big, &sum] {
    for (double v : big) sum += v;
  });
  SmallFn g(std::move(f));
  g();
  EXPECT_DOUBLE_EQ(sum, 48.0);
}

TEST(SmallFn, DestroysCaptureExactlyOnce) {
  // shared_ptr use_count tracks copies/destructions of the capture through
  // construction, move-relocation, and scope exit.
  auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    SmallFn f([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    SmallFn g(std::move(f));
    EXPECT_EQ(token.use_count(), 2);  // relocated, not duplicated
    g();
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFn, AssignmentReleasesPreviousCapture) {
  auto old_token = std::make_shared<int>(1);
  auto new_token = std::make_shared<int>(2);
  SmallFn f([old_token] {});
  EXPECT_EQ(old_token.use_count(), 2);
  f = SmallFn([new_token] {});
  EXPECT_EQ(old_token.use_count(), 1);
  EXPECT_EQ(new_token.use_count(), 2);
}

TEST(SmallFn, ReentrantSchedulingPatternWorks) {
  // The engine's dominant pattern: a callback that constructs and stores
  // another SmallFn while running.
  std::vector<SmallFn> queue;
  int n = 0;
  queue.emplace_back([&queue, &n] {
    ++n;
    queue.emplace_back([&n] { n += 10; });
  });
  queue.front()();
  queue.back()();
  EXPECT_EQ(n, 11);
}

}  // namespace
}  // namespace wfe::sim
