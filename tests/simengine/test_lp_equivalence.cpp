// Differential equivalence fuzz: the LP-partitioned ParallelEngine vs the
// sequential calendar-queue engine, through the full SimulatedExecutor.
//
// 10 000 randomized ensembles (member count, analyses per member, node
// placements, workload scales, step counts, buffer depths) per LP crew
// size (1 / 2 / 4 / 8 worker threads), with fresh topologies per crew. Every round replays the same
// spec on both engines and requires byte-identical outputs:
//   * the WFET stage trace (met::trace_to_text bytes),
//   * the synthesized hardware-counter totals,
//   * the observability counter snapshot, and — on traced rounds — the
//     full span/counter run log (obs::runlog_to_jsonl bytes), which pins
//     the engine.events / engine.queue_depth telemetry stride and the
//     dtl occupancy gauges to the sequential emission order.
// A slice of rounds turns on jitter or fault injection: those replays are
// un-partitionable (shared-RNG draws / event cancellation), so the
// executor must take the sequential fallback and stay identical trivially
// — the slice exists to keep the fallback path honest under fuzz too.
//
// Own binary: at 10k rounds x 2 replays this is the longest-running suite;
// keeping it out of test_simengine keeps the inner-loop suites fast.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "metrics/trace_io.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/rng.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

rt::EnsembleSpec random_spec(Xoshiro256& rng) {
  rt::EnsembleSpec spec;
  spec.name = "lp-fuzz";
  spec.n_steps = 1 + rng.below(4);
  const int members = 1 + static_cast<int>(rng.below(4));
  for (int m = 0; m < members; ++m) {
    rt::MemberSpec mem;
    mem.sim.nodes = {static_cast<int>(rng.below(8))};
    if (rng.below(8) == 0) {
      // Occasionally span two nodes (cross-node compute penalty path).
      mem.sim.nodes.insert(static_cast<int>(rng.below(8)));
    }
    mem.sim.cores = 1 + static_cast<int>(rng.below(2));
    mem.sim.natoms = 1000 + rng.below(50'000);
    mem.sim.stride = 10 + static_cast<int>(rng.below(400));
    mem.buffer_capacity = 1 + static_cast<int>(rng.below(2));
    const int analyses = 1 + static_cast<int>(rng.below(3));
    for (int a = 0; a < analyses; ++a) {
      rt::AnalysisSpec as;
      as.nodes = {static_cast<int>(rng.below(8))};
      as.cores = 1 + static_cast<int>(rng.below(2));
      mem.analyses.push_back(as);
    }
    spec.members.push_back(std::move(mem));
  }
  return spec;
}

struct RunOutput {
  std::string trace_text;
  std::string runlog;  ///< empty on untraced rounds
  obs::CounterSnapshot counters;
  std::uint64_t events = 0;
  std::uint64_t n_steps = 0;
  plat::HwCounters hw;
};

RunOutput run_once(const rt::EnsembleSpec& spec,
                   const rt::SimulatedOptions& base,
                   const rt::EngineSelection& engine, bool traced) {
  rt::SimulatedOptions options = base;
  options.engine = engine;
  options.trace_obs = traced;
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::Session> session;
  if (traced) {
    recorder = std::make_unique<obs::Recorder>();
    session = std::make_unique<obs::Session>(*recorder);
  }
  const rt::SimulatedExecutor exec(wl::cori_like_platform(), options);
  const rt::ExecutionResult result = exec.run(spec);
  RunOutput out;
  out.trace_text = met::trace_to_text(result.trace);
  out.events = result.events_processed;
  out.n_steps = result.n_steps;
  out.hw = result.hw_totals;
  out.counters = result.counters;
  if (traced) {
    session.reset();
    out.runlog = obs::runlog_to_jsonl(recorder->take());
  }
  return out;
}

void fuzz_shard(int lp_threads, std::uint64_t seed, int rounds) {
  const rt::EngineSelection seq = rt::EngineSelection::parse("seq");
  const rt::EngineSelection lp =
      rt::EngineSelection::parse("lp:" + std::to_string(lp_threads));
  Xoshiro256 rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const rt::EnsembleSpec spec = random_spec(rng);
    rt::SimulatedOptions base;
    switch (rng.below(10)) {
      case 8:  // jitter: un-partitionable, exercises the seq fallback
        base.jitter_cv = 0.05;
        base.seed = rng();
        break;
      case 9:  // fault injection: likewise
        base.faults.node_mtbf_s = 150.0;
        base.faults.stage_error_prob = 0.01;
        base.faults.seed = rng();
        break;
      default:
        break;
    }
    // Tracing costs; sample it rather than paying it every round. The
    // consumed random draw keeps topology streams independent of the
    // sampling cadence.
    const bool traced = round % 4 == 0;
    const RunOutput a = run_once(spec, base, seq, traced);
    const RunOutput b = run_once(spec, base, lp, traced);
    ASSERT_EQ(a.trace_text, b.trace_text)
        << "round " << round << " lp:" << lp_threads;
    ASSERT_EQ(a.events, b.events) << "round " << round;
    ASSERT_EQ(a.n_steps, b.n_steps) << "round " << round;
    ASSERT_EQ(a.hw.instructions, b.hw.instructions) << "round " << round;
    ASSERT_EQ(a.hw.cycles, b.hw.cycles) << "round " << round;
    ASSERT_EQ(a.hw.llc_references, b.hw.llc_references) << "round " << round;
    ASSERT_EQ(a.hw.llc_misses, b.hw.llc_misses) << "round " << round;
    ASSERT_TRUE(a.counters == b.counters) << "round " << round;
    ASSERT_EQ(a.runlog, b.runlog) << "round " << round;
  }
}

// 10 000 randomized topologies per LP crew size. Distinct seeds per
// shard: every topology is fresh, none is recycled across crews.

TEST(LpEquivalenceFuzz, OneWorkerThread) { fuzz_shard(1, 0xA11CE, 10'000); }

TEST(LpEquivalenceFuzz, TwoWorkerThreads) { fuzz_shard(2, 0xB0B, 10'000); }

TEST(LpEquivalenceFuzz, FourWorkerThreads) { fuzz_shard(4, 0xCAFE, 10'000); }

TEST(LpEquivalenceFuzz, EightWorkerThreads) { fuzz_shard(8, 0xD1CE, 10'000); }

// Directed, not fuzzed: one full paper configuration (37 in situ steps,
// traced) stays byte-identical through the LP engine. The golden-trace
// corpus runs the whole table through lp:4 in the golden.lp ctest pass;
// this pins one end-to-end case inside this binary for fast iteration.
TEST(LpEquivalence, PaperConfigCfTracedBitIdentical) {
  const rt::EnsembleSpec spec = wl::paper_config("Cf").spec;
  const rt::SimulatedOptions base;
  const RunOutput a =
      run_once(spec, base, rt::EngineSelection::parse("seq"), true);
  const RunOutput b =
      run_once(spec, base, rt::EngineSelection::parse("lp:4"), true);
  EXPECT_EQ(a.trace_text, b.trace_text);
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.runlog, b.runlog);
}

}  // namespace
}  // namespace wfe
