// FaultSpec / RecoveryPolicy validation and the backoff schedule.
#include "resilience/fault_spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace wfe::res {
namespace {

TEST(FaultSpec, DefaultIsDisabledAndValid) {
  FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpec, AnyNonzeroRateEnables) {
  FaultSpec spec;
  spec.node_mtbf_s = 100.0;
  EXPECT_TRUE(spec.enabled());
  spec = {};
  spec.stage_error_prob = 0.01;
  EXPECT_TRUE(spec.enabled());
  spec = {};
  spec.transfer_loss_prob = 0.01;
  EXPECT_TRUE(spec.enabled());
}

TEST(FaultSpec, RejectsBadRates) {
  FaultSpec spec;
  spec.node_mtbf_s = -1.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = {};
  spec.node_mtbf_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = {};
  spec.node_repair_s = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = {};
  spec.stage_error_prob = 1.5;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = {};
  spec.stage_error_prob = -0.1;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec = {};
  spec.transfer_loss_prob = std::nan("");
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(RecoveryPolicy, DefaultIsValid) {
  RecoveryPolicy policy;
  EXPECT_NO_THROW(policy.validate());
}

TEST(RecoveryPolicy, BackoffIsExponentialAndCapped) {
  RecoveryPolicy policy;
  policy.backoff_base_s = 1.0;
  policy.backoff_cap_s = 5.0;
  EXPECT_DOUBLE_EQ(policy.backoff(1), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff(2), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff(3), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff(4), 5.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff(10), 5.0);
}

TEST(RecoveryPolicy, RejectsBadBudgets) {
  RecoveryPolicy policy;
  policy.max_retries = -1;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy = {};
  policy.backoff_base_s = -0.5;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy = {};
  policy.backoff_cap_s = 0.1;  // below the 0.5 base
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy = {};
  policy.checkpoint_period = 0;
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy = {};
  policy.checkpoint_cost_s = std::nan("");
  EXPECT_THROW(policy.validate(), InvalidArgument);
  policy = {};
  policy.max_restarts = -1;
  EXPECT_THROW(policy.validate(), InvalidArgument);
}

TEST(RecoveryKind, NamesAreStable) {
  EXPECT_STREQ(to_string(RecoveryKind::kRetry), "retry");
  EXPECT_STREQ(to_string(RecoveryKind::kCheckpointRestart),
               "checkpoint-restart");
  EXPECT_STREQ(to_string(RecoveryKind::kFailMember), "fail-member");
}

TEST(FailureSummary, Accounting) {
  FailureSummary fs;
  EXPECT_TRUE(fs.complete());
  EXPECT_EQ(fs.faults_injected(), 0u);
  fs.crash_stage_kills = 3;
  fs.transient_stage_faults = 2;
  fs.wasted_core_seconds = 7200.0;
  fs.members_failed = 1;
  fs.failed_members = {4};
  EXPECT_EQ(fs.faults_injected(), 5u);
  EXPECT_DOUBLE_EQ(fs.wasted_core_hours(), 2.0);
  EXPECT_FALSE(fs.complete());
  EXPECT_FALSE(fs.str().empty());
}

}  // namespace
}  // namespace wfe::res
