// Node-level fault domains: scripted and fatal permanent deaths, straggler
// and network-degradation windows. Everything here is about determinism —
// the timelines must be pure functions of (spec, node), independent of
// query order, so fault runs replay identically.
#include <gtest/gtest.h>

#include <vector>

#include "resilience/fault_injector.hpp"

namespace wfe::res {
namespace {

FaultSpec scripted_death(int node, double at_s) {
  FaultSpec spec;
  spec.node_down.push_back({node, at_s});
  spec.seed = 11;
  return spec;
}

TEST(NodeFaults, ScriptedDeathIsPermanent) {
  FaultInjector inj(scripted_death(1, 100.0), 4);
  EXPECT_DOUBLE_EQ(inj.down_at(1), 100.0);
  EXPECT_EQ(inj.down_at(0), FaultInjector::kNever);

  // Before the death nothing is wrong; after it the node never comes back.
  EXPECT_FALSE(inj.first_down_node({0, 1, 2}, 50.0).has_value());
  ASSERT_TRUE(inj.first_down_node({0, 1, 2}, 150.0).has_value());
  EXPECT_EQ(*inj.first_down_node({0, 1, 2}, 150.0), 1);
  EXPECT_EQ(inj.all_up_at({1}, 150.0), FaultInjector::kNever);
  EXPECT_DOUBLE_EQ(inj.all_up_at({0, 2}, 150.0), 150.0);

  // The death shows up as a crash for stages spanning it.
  EXPECT_DOUBLE_EQ(inj.first_crash_in({1}, 50.0, 200.0), 100.0);
  EXPECT_EQ(inj.first_crash_in({0}, 50.0, 200.0), FaultInjector::kNever);
  EXPECT_DOUBLE_EQ(inj.first_down_time({0, 1, 2, 3}), 100.0);
}

TEST(NodeFaults, FatalCrashesPromoteTheFirstCrashToADeath) {
  FaultSpec spec;
  spec.node_mtbf_s = 300.0;
  spec.crashes_are_fatal = true;
  spec.seed = 21;
  FaultInjector inj(spec, 4);

  const double death = inj.down_at(2);
  ASSERT_NE(death, FaultInjector::kNever);
  EXPECT_GT(death, 0.0);
  // The death is the node's first crash...
  EXPECT_DOUBLE_EQ(inj.first_crash_in({2}, 0.0, 1e9), death);
  // ...and afterwards the dead node emits no further crashes.
  EXPECT_EQ(inj.first_crash_in({2}, death, 1e9), FaultInjector::kNever);
  EXPECT_EQ(inj.all_up_at({2}, death + 1.0), FaultInjector::kNever);
}

TEST(NodeFaults, DeathScheduleIsQueryOrderIndependent) {
  FaultSpec spec;
  spec.node_mtbf_s = 250.0;
  spec.crashes_are_fatal = true;
  spec.seed = 5;
  FaultInjector a(spec, 4);
  FaultInjector b(spec, 4);

  // `a` asks node-by-node ascending; `b` descending, after first probing
  // far into the future. The per-node streams must not interfere.
  std::vector<double> deaths_a, deaths_b(4);
  for (int n = 0; n < 4; ++n) deaths_a.push_back(a.down_at(n));
  b.first_crash_in({0, 1, 2, 3}, 5000.0, 50000.0);
  for (int n = 3; n >= 0; --n) deaths_b[static_cast<std::size_t>(n)] = b.down_at(n);
  for (int n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(deaths_a[static_cast<std::size_t>(n)],
                     deaths_b[static_cast<std::size_t>(n)])
        << "node " << n;
  }
}

TEST(NodeFaults, StragglerWindowsAreDeterministicAndPerNode) {
  FaultSpec spec;
  spec.straggler_mtbf_s = 120.0;
  spec.straggler_duration_s = 30.0;
  spec.straggler_factor = 2.0;
  spec.seed = 9;
  FaultInjector a(spec, 3);
  FaultInjector b(spec, 3);

  bool node_divergence = false;
  for (double t = 0.0; t < 3000.0; t += 7.0) {
    for (int n = 0; n < 3; ++n) {
      EXPECT_EQ(a.straggling(n, t), b.straggling(n, t)) << n << "@" << t;
    }
    const double s = a.compute_slowdown({0, 1, 2}, t);
    EXPECT_TRUE(s == 1.0 || s == 2.0) << "slowdown " << s;
    node_divergence =
        node_divergence || a.straggling(0, t) != a.straggling(1, t);
  }
  // Per-node streams: the two nodes' window patterns differ somewhere.
  EXPECT_TRUE(node_divergence);
}

TEST(NodeFaults, NetworkDegradationIsDeterministic) {
  FaultSpec spec;
  spec.net_degrade_mtbf_s = 200.0;
  spec.net_degrade_duration_s = 40.0;
  spec.net_degrade_factor = 3.0;
  spec.seed = 13;
  FaultInjector a(spec, 2);
  FaultInjector b(spec, 2);

  bool saw_window = false;
  for (double t = 0.0; t < 5000.0; t += 11.0) {
    const double s = a.transfer_slowdown(t);
    EXPECT_DOUBLE_EQ(s, b.transfer_slowdown(t)) << "t=" << t;
    EXPECT_TRUE(s == 1.0 || s == 3.0);
    saw_window = saw_window || s > 1.0;
  }
  EXPECT_TRUE(saw_window);
}

TEST(NodeFaults, ProbeViewKeepsCapacityEffectsStripsInjection) {
  FaultSpec spec;
  spec.node_mtbf_s = 100.0;
  spec.crashes_are_fatal = true;
  spec.node_down.push_back({0, 50.0});
  spec.straggler_mtbf_s = 120.0;
  spec.net_degrade_mtbf_s = 150.0;
  spec.stage_error_prob = 0.1;
  spec.transfer_loss_prob = 0.1;

  const FaultSpec probe = spec.probe_view();
  EXPECT_EQ(probe.node_mtbf_s, 0.0);
  EXPECT_FALSE(probe.crashes_are_fatal);
  EXPECT_TRUE(probe.node_down.empty());
  EXPECT_EQ(probe.stage_error_prob, 0.0);
  EXPECT_EQ(probe.transfer_loss_prob, 0.0);
  EXPECT_DOUBLE_EQ(probe.straggler_mtbf_s, 120.0);
  EXPECT_DOUBLE_EQ(probe.net_degrade_mtbf_s, 150.0);
  EXPECT_FALSE(probe.node_faults());
  EXPECT_NE(probe.digest(), spec.digest());
}

}  // namespace
}  // namespace wfe::res
