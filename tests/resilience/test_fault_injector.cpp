// FaultInjector: deterministic crash timelines and counter-based verdicts.
#include "resilience/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace wfe::res {
namespace {

using core::StageKind;

FaultSpec crash_spec(double mtbf = 500.0, double repair = 60.0,
                     std::uint64_t seed = 7) {
  FaultSpec spec;
  spec.node_mtbf_s = mtbf;
  spec.node_repair_s = repair;
  spec.seed = seed;
  return spec;
}

TEST(FaultInjector, DisabledSpecNeverCrashes) {
  FaultInjector inj({}, 4);
  EXPECT_EQ(inj.first_crash_in({0, 1, 2, 3}, 0.0, 1e9),
            FaultInjector::kNever);
  EXPECT_DOUBLE_EQ(inj.all_up_at({0, 1, 2, 3}, 123.0), 123.0);
  EXPECT_FALSE(
      inj.transient_point(0, -1, 0, StageKind::kSimulate, 1).has_value());
}

TEST(FaultInjector, SameSeedSameCrashTimeline) {
  FaultInjector a(crash_spec(), 4);
  FaultInjector b(crash_spec(), 4);
  for (double t = 0.0; t < 5000.0; t += 250.0) {
    EXPECT_DOUBLE_EQ(a.first_crash_in({2}, t, t + 250.0),
                     b.first_crash_in({2}, t, t + 250.0));
  }
}

TEST(FaultInjector, QueryOrderDoesNotChangeTheTimeline) {
  // Ask injector `a` far into the future first, then near; `b` the other
  // way round. The lazily-extended schedules must agree.
  FaultInjector a(crash_spec(), 4);
  FaultInjector b(crash_spec(), 4);
  const double far = a.first_crash_in({1}, 5000.0, 20000.0);
  const double near_a = a.first_crash_in({1}, 0.0, 5000.0);
  const double near_b = b.first_crash_in({1}, 0.0, 5000.0);
  const double far_b = b.first_crash_in({1}, 5000.0, 20000.0);
  EXPECT_DOUBLE_EQ(near_a, near_b);
  EXPECT_DOUBLE_EQ(far, far_b);
}

TEST(FaultInjector, NodesHaveIndependentTimelines) {
  FaultInjector inj(crash_spec(), 4);
  const double c0 = inj.first_crash_in({0}, 0.0, 1e6);
  const double c1 = inj.first_crash_in({1}, 0.0, 1e6);
  EXPECT_NE(c0, c1);  // astronomically unlikely to collide
}

TEST(FaultInjector, CrashBoundariesAreStrict) {
  FaultInjector inj(crash_spec(), 2);
  const double crash = inj.first_crash_in({0}, 0.0, 1e6);
  ASSERT_TRUE(std::isfinite(crash));
  // A stage starting exactly at the crash instant survives it...
  EXPECT_GT(inj.first_crash_in({0}, crash, crash + 1e-6), crash);
  // ...and a stage ending exactly at it dies only strictly inside.
  EXPECT_EQ(inj.first_crash_in({0}, crash - 1e-6, crash),
            FaultInjector::kNever);
}

TEST(FaultInjector, AllUpAtWaitsOutRepairWindows) {
  FaultInjector inj(crash_spec(500.0, 60.0), 2);
  const double crash = inj.first_crash_in({0}, 0.0, 1e6);
  ASSERT_TRUE(std::isfinite(crash));
  // Mid-repair: resume at crash + repair. Before the crash: no wait.
  EXPECT_DOUBLE_EQ(inj.all_up_at({0}, crash + 1.0), crash + 60.0);
  EXPECT_DOUBLE_EQ(inj.all_up_at({0}, crash - 1.0), crash - 1.0);
  // The other node is unaffected by node 0's repair.
  EXPECT_DOUBLE_EQ(inj.all_up_at({1}, crash + 1.0), crash + 1.0);
}

TEST(FaultInjector, NoCrashesDuringRepair) {
  FaultInjector inj(crash_spec(200.0, 100.0), 1);
  const double crash = inj.first_crash_in({0}, 0.0, 1e6);
  ASSERT_TRUE(std::isfinite(crash));
  EXPECT_EQ(inj.first_crash_in({0}, crash, crash + 100.0),
            FaultInjector::kNever);
}

TEST(FaultInjector, TransientVerdictIsPureAndPerAttempt) {
  FaultSpec spec;
  spec.stage_error_prob = 0.5;
  spec.seed = 11;
  FaultInjector a(spec, 1);
  FaultInjector b(spec, 1);
  int faulted = 0;
  for (std::uint64_t step = 0; step < 200; ++step) {
    const auto va = a.transient_point(3, -1, step, StageKind::kSimulate, 1);
    const auto vb = b.transient_point(3, -1, step, StageKind::kSimulate, 1);
    ASSERT_EQ(va.has_value(), vb.has_value());
    if (va) {
      EXPECT_DOUBLE_EQ(*va, *vb);
      EXPECT_GT(*va, 0.0);
      EXPECT_LT(*va, 1.0);
      ++faulted;
    }
    // Re-asking the same attempt does not consume state.
    const auto again = a.transient_point(3, -1, step, StageKind::kSimulate, 1);
    ASSERT_EQ(va.has_value(), again.has_value());
  }
  // ~50% fault rate over 200 attempts: a generous 5-sigma band.
  EXPECT_GT(faulted, 60);
  EXPECT_LT(faulted, 140);
}

TEST(FaultInjector, VerdictsKeyOnEveryCoordinate) {
  FaultSpec spec;
  spec.stage_error_prob = 0.5;
  spec.transfer_loss_prob = 0.5;
  FaultInjector inj(spec, 1);
  // Distinct coordinates give (almost surely, over 64 trials) at least one
  // differing verdict in each dimension.
  auto differs = [&](auto probe) {
    for (int k = 0; k < 64; ++k) {
      const auto base = inj.transient_point(0, -1, static_cast<std::uint64_t>(k),
                                            StageKind::kSimulate, 1);
      if (base.has_value() != probe(k).has_value()) return true;
    }
    return false;
  };
  EXPECT_TRUE(differs([&](int k) {
    return inj.transient_point(1, -1, static_cast<std::uint64_t>(k),
                               StageKind::kSimulate, 1);
  }));
  EXPECT_TRUE(differs([&](int k) {
    return inj.transient_point(0, -1, static_cast<std::uint64_t>(k),
                               StageKind::kSimulate, 2);
  }));
}

TEST(FaultInjector, OnlyComputeAndTransferStagesFault) {
  FaultSpec spec;
  spec.stage_error_prob = 1.0;
  spec.transfer_loss_prob = 1.0;
  FaultInjector inj(spec, 1);
  EXPECT_TRUE(inj.transient_point(0, -1, 0, StageKind::kSimulate, 1));
  EXPECT_TRUE(inj.transient_point(0, 0, 0, StageKind::kAnalyze, 1));
  EXPECT_TRUE(inj.transient_point(0, -1, 0, StageKind::kWrite, 1));
  EXPECT_TRUE(inj.transient_point(0, 0, 0, StageKind::kRead, 1));
  EXPECT_FALSE(inj.transient_point(0, -1, 0, StageKind::kSimIdle, 1));
  EXPECT_FALSE(inj.transient_point(0, 0, 0, StageKind::kAnaIdle, 1));
  EXPECT_FALSE(inj.transient_point(0, -1, 0, StageKind::kCheckpoint, 1));
}

TEST(FaultInjector, DifferentSeedsDifferentTimelines) {
  FaultInjector a(crash_spec(500.0, 60.0, 1), 1);
  FaultInjector b(crash_spec(500.0, 60.0, 2), 1);
  EXPECT_NE(a.first_crash_in({0}, 0.0, 1e6),
            b.first_crash_in({0}, 0.0, 1e6));
}

TEST(FaultInjector, MeanInterArrivalTracksMtbf) {
  // Over many crashes the empirical inter-arrival mean (minus repair) should
  // land near the configured MTBF.
  FaultInjector inj(crash_spec(300.0, 50.0, 99), 1);
  std::vector<double> crashes;
  double t = 0.0;
  while (crashes.size() < 400) {
    const double c = inj.first_crash_in({0}, t, t + 1e7);
    ASSERT_TRUE(std::isfinite(c));
    crashes.push_back(c);
    t = c;
  }
  double sum = crashes.front();
  for (std::size_t i = 1; i < crashes.size(); ++i) {
    sum += crashes[i] - crashes[i - 1] - 50.0;  // subtract the repair window
  }
  const double mean = sum / static_cast<double>(crashes.size());
  EXPECT_NEAR(mean, 300.0, 60.0);  // ~4 sigma at n=400
}

}  // namespace
}  // namespace wfe::res
