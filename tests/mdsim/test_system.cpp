// Tests for the particle-system state.
#include "mdsim/system.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace wfe::md {
namespace {

TEST(System, RejectsEmptySystem) {
  EXPECT_THROW(System(0, 1.0), InvalidArgument);
  EXPECT_THROW(System(4, 0.0), InvalidArgument);
}

TEST(System, FccLatticeHasFourAtomsPerCell) {
  Xoshiro256 rng(1);
  const System sys = System::fcc_lattice(3, 0.8, 1.0, rng);
  EXPECT_EQ(sys.size(), 4u * 27u);
}

TEST(System, FccLatticeMatchesDensity) {
  Xoshiro256 rng(2);
  const System sys = System::fcc_lattice(4, 0.8442, 1.0, rng);
  const double volume = std::pow(sys.box_length(), 3);
  EXPECT_NEAR(static_cast<double>(sys.size()) / volume, 0.8442, 1e-12);
}

TEST(System, FccPositionsInsideBox) {
  Xoshiro256 rng(3);
  const System sys = System::fcc_lattice(3, 0.9, 1.0, rng);
  for (const Vec3& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box_length());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, sys.box_length());
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, sys.box_length());
  }
}

TEST(System, FccNoOverlappingAtoms) {
  Xoshiro256 rng(4);
  const System sys = System::fcc_lattice(2, 0.8, 1.0, rng);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      const Vec3 d = sys.min_image(sys.positions()[i], sys.positions()[j]);
      EXPECT_GT(d.norm2(), 0.1);
    }
  }
}

TEST(System, InitialVelocitiesHaveNoDrift) {
  Xoshiro256 rng(5);
  const System sys = System::fcc_lattice(3, 0.8, 1.5, rng);
  const Vec3 p = sys.total_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-10);
  EXPECT_NEAR(p.y, 0.0, 1e-10);
  EXPECT_NEAR(p.z, 0.0, 1e-10);
}

TEST(System, InitialTemperatureNearTarget) {
  Xoshiro256 rng(6);
  const System sys = System::fcc_lattice(5, 0.8, 1.2, rng);  // 500 atoms
  EXPECT_NEAR(sys.temperature(), 1.2, 0.15);
}

TEST(System, ZeroTemperatureMeansZeroVelocities) {
  Xoshiro256 rng(7);
  const System sys = System::fcc_lattice(2, 0.8, 0.0, rng);
  EXPECT_EQ(sys.kinetic_energy(), 0.0);
  EXPECT_EQ(sys.temperature(), 0.0);
}

TEST(System, MinImageShorterThanHalfBoxDiagonal) {
  Xoshiro256 rng(8);
  const System sys = System::fcc_lattice(3, 0.8, 1.0, rng);
  const double half = sys.box_length() / 2.0;
  for (std::size_t i = 1; i < sys.size(); i += 7) {
    const Vec3 d = sys.min_image(sys.positions()[0], sys.positions()[i]);
    EXPECT_LE(std::abs(d.x), half + 1e-12);
    EXPECT_LE(std::abs(d.y), half + 1e-12);
    EXPECT_LE(std::abs(d.z), half + 1e-12);
  }
}

TEST(System, MinImageOfPeriodicImagesIsZero) {
  System sys(1, 10.0);
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{11.0, -8.0, 13.0};  // same point shifted by +-L
  const Vec3 d = sys.min_image(a, b);
  EXPECT_NEAR(d.x, 0.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
  EXPECT_NEAR(d.z, 0.0, 1e-12);
}

TEST(System, WrapBringsPositionsIntoBox) {
  System sys(2, 5.0);
  sys.positions()[0] = Vec3{-1.0, 6.0, 12.5};
  sys.positions()[1] = Vec3{4.999, 0.0, -0.001};
  sys.wrap();
  for (const Vec3& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 5.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 5.0);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, 5.0);
  }
}

TEST(System, RemoveDriftZerosMomentum) {
  System sys(3, 5.0);
  sys.velocities()[0] = Vec3{1.0, 0.0, 0.0};
  sys.velocities()[1] = Vec3{2.0, -1.0, 3.0};
  sys.velocities()[2] = Vec3{0.0, 0.5, -1.0};
  sys.remove_drift();
  const Vec3 p = sys.total_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  EXPECT_NEAR(p.z, 0.0, 1e-12);
}

TEST(System, FlattenPositionsLayout) {
  System sys(2, 5.0);
  sys.positions()[0] = Vec3{1.0, 2.0, 3.0};
  sys.positions()[1] = Vec3{4.0, 5.0, 6.0};
  EXPECT_EQ(sys.flatten_positions(),
            (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(System, KineticEnergyFormula) {
  System sys(1, 5.0);
  sys.velocities()[0] = Vec3{3.0, 0.0, 4.0};  // |v|^2 = 25
  EXPECT_DOUBLE_EQ(sys.kinetic_energy(), 12.5);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
}

TEST(System, DeterministicGivenSeed) {
  Xoshiro256 rng1(99), rng2(99);
  const System a = System::fcc_lattice(3, 0.8, 1.0, rng1);
  const System b = System::fcc_lattice(3, 0.8, 1.0, rng2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.velocities()[i].x, b.velocities()[i].x);
  }
}

}  // namespace
}  // namespace wfe::md
