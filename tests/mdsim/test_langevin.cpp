// Langevin thermostat tests.
#include <gtest/gtest.h>

#include <cmath>

#include "mdsim/integrator.hpp"
#include "support/error.hpp"

namespace wfe::md {
namespace {

System liquid(std::uint64_t seed, double temperature) {
  Xoshiro256 rng(seed);
  return System::fcc_lattice(3, 0.8442, temperature, rng);
}

IntegratorParams langevin(double target, double gamma = 2.0,
                          std::uint64_t seed = 1) {
  IntegratorParams p;
  p.dt = 0.002;
  p.thermostat = ThermostatKind::kLangevin;
  p.langevin_gamma = gamma;
  p.target_temperature = target;
  p.langevin_seed = seed;
  return p;
}

TEST(Langevin, RejectsNegativeFriction) {
  IntegratorParams p = langevin(1.0);
  p.langevin_gamma = -0.5;
  EXPECT_THROW(VelocityVerlet(LjParams{}, p), InvalidArgument);
}

TEST(Langevin, ThermalizesAHotSystem) {
  System sys = liquid(1, 2.5);
  VelocityVerlet vv(LjParams{}, langevin(0.7, 5.0));
  (void)vv.initialize(sys);
  for (int s = 0; s < 1500; ++s) (void)vv.step(sys);
  EXPECT_NEAR(sys.temperature(), 0.7, 0.15);
}

TEST(Langevin, HeatsAColdSystem) {
  System sys = liquid(2, 0.05);
  VelocityVerlet vv(LjParams{}, langevin(1.0, 5.0));
  (void)vv.initialize(sys);
  for (int s = 0; s < 1500; ++s) (void)vv.step(sys);
  EXPECT_NEAR(sys.temperature(), 1.0, 0.25);
}

TEST(Langevin, TemperatureFluctuatesUnlikeNve) {
  // Canonical sampling: the kinetic energy fluctuates step to step.
  System sys = liquid(3, 0.7);
  VelocityVerlet vv(LjParams{}, langevin(0.7, 2.0));
  (void)vv.initialize(sys);
  for (int s = 0; s < 200; ++s) (void)vv.step(sys);
  double min_t = 1e9, max_t = 0.0;
  for (int s = 0; s < 200; ++s) {
    (void)vv.step(sys);
    min_t = std::min(min_t, sys.temperature());
    max_t = std::max(max_t, sys.temperature());
  }
  EXPECT_GT(max_t - min_t, 0.01);
}

TEST(Langevin, DeterministicGivenSeed) {
  System a = liquid(4, 0.7), b = liquid(4, 0.7);
  VelocityVerlet va(LjParams{}, langevin(0.7, 2.0, 99));
  VelocityVerlet vb(LjParams{}, langevin(0.7, 2.0, 99));
  (void)va.initialize(a);
  (void)vb.initialize(b);
  for (int s = 0; s < 30; ++s) {
    (void)va.step(a);
    (void)vb.step(b);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions()[i].x, b.positions()[i].x);
  }
}

TEST(Langevin, NoiseSeedsDiverge) {
  System a = liquid(5, 0.7), b = liquid(5, 0.7);
  VelocityVerlet va(LjParams{}, langevin(0.7, 2.0, 1));
  VelocityVerlet vb(LjParams{}, langevin(0.7, 2.0, 2));
  (void)va.initialize(a);
  (void)vb.initialize(b);
  for (int s = 0; s < 10; ++s) {
    (void)va.step(a);
    (void)vb.step(b);
  }
  EXPECT_NE(a.positions()[0].x, b.positions()[0].x);
}

TEST(Langevin, ZeroFrictionReducesTowardNve) {
  // gamma = 0: c1 = 1, c2 = 0 — the thermostat becomes a no-op and energy
  // is conserved as in NVE.
  System sys = liquid(6, 0.7);
  IntegratorParams p = langevin(0.7, 0.0);
  VelocityVerlet vv(LjParams{}, p);
  ForceResult fr = vv.initialize(sys);
  const double e0 = fr.potential_energy + sys.kinetic_energy();
  for (int s = 0; s < 200; ++s) fr = vv.step(sys);
  const double e1 = fr.potential_energy + sys.kinetic_energy();
  EXPECT_NEAR(e1, e0, 0.01 * std::abs(e0));
}

TEST(Thermostats, ExplicitKindOverridesTauHeuristic) {
  // thermostat = kLangevin wins even with tau set.
  System sys = liquid(7, 2.0);
  IntegratorParams p = langevin(0.5, 10.0);
  p.thermostat_tau = 0.1;  // would select Berendsen if kind were kNone
  VelocityVerlet vv(LjParams{}, p);
  (void)vv.initialize(sys);
  for (int s = 0; s < 800; ++s) (void)vv.step(sys);
  EXPECT_NEAR(sys.temperature(), 0.5, 0.15);
}

}  // namespace
}  // namespace wfe::md
