// Cell-list correctness: candidate pairs must be a superset of all pairs
// within the cutoff, with no duplicates, for arbitrary configurations.
#include "mdsim/cell_list.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"

namespace wfe::md {
namespace {

System random_system(std::size_t n, double box, std::uint64_t seed) {
  System sys(n, box);
  Xoshiro256 rng(seed);
  for (auto& p : sys.positions()) {
    p = Vec3{rng.uniform(0.0, box), rng.uniform(0.0, box),
             rng.uniform(0.0, box)};
  }
  return sys;
}

std::set<std::pair<std::size_t, std::size_t>> candidate_pairs(
    const System& sys, double cutoff) {
  CellList cells(sys, cutoff);
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  cells.for_each_candidate_pair([&](std::size_t i, std::size_t j) {
    EXPECT_LT(i, j) << "pairs must be ordered";
    const bool inserted = pairs.insert({i, j}).second;
    EXPECT_TRUE(inserted) << "duplicate pair (" << i << "," << j << ")";
  });
  return pairs;
}

std::set<std::pair<std::size_t, std::size_t>> brute_force_pairs(
    const System& sys, double cutoff) {
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  const double rc2 = cutoff * cutoff;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      if (sys.min_image(sys.positions()[i], sys.positions()[j]).norm2() <
          rc2) {
        pairs.insert({i, j});
      }
    }
  }
  return pairs;
}

TEST(CellList, RejectsNonPositiveCutoff) {
  const System sys = random_system(8, 5.0, 1);
  EXPECT_THROW(CellList(sys, 0.0), InvalidArgument);
}

TEST(CellList, SmallBoxFallsBackToAllPairs) {
  const System sys = random_system(10, 4.0, 2);
  CellList cells(sys, 2.5);  // 4.0 / 2.5 < 3 cells -> all-pairs
  EXPECT_LT(cells.cells_per_side(), 3);
  EXPECT_EQ(candidate_pairs(sys, 2.5).size(), 45u);  // C(10,2)
}

TEST(CellList, CellsPerSideFloorsBoxOverCutoff) {
  const System sys = random_system(20, 10.0, 3);
  CellList cells(sys, 2.5);
  EXPECT_EQ(cells.cells_per_side(), 4);
  EXPECT_EQ(cells.cell_count(), 64u);
}

// Property: the candidate set covers every pair within the cutoff.
class CellListCoverage
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(CellListCoverage, CoversAllCutoffPairs) {
  const auto [n, box, cutoff] = GetParam();
  const System sys =
      random_system(static_cast<std::size_t>(n), box,
                    static_cast<std::uint64_t>(n) * 1000 +
                        static_cast<std::uint64_t>(box));
  const auto candidates = candidate_pairs(sys, cutoff);
  const auto required = brute_force_pairs(sys, cutoff);
  for (const auto& pair : required) {
    EXPECT_TRUE(candidates.contains(pair))
        << "missing pair (" << pair.first << "," << pair.second << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CellListCoverage,
    ::testing::Values(std::make_tuple(32, 6.0, 1.5),
                      std::make_tuple(64, 8.0, 2.5),
                      std::make_tuple(100, 10.0, 2.5),
                      std::make_tuple(100, 12.0, 3.0),
                      std::make_tuple(7, 9.0, 2.9),
                      std::make_tuple(200, 15.0, 2.5),
                      std::make_tuple(1, 10.0, 2.5)));

TEST(CellList, ParticlesBinnedIntoValidCells) {
  const System sys = random_system(50, 10.0, 9);
  CellList cells(sys, 2.5);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_LT(cells.cell_of(i), cells.cell_count());
  }
}

TEST(CellList, PrunesFarPairsWhenBoxIsLarge) {
  // In a big sparse box the candidate set must be far below all-pairs.
  const System sys = random_system(400, 40.0, 10);
  const auto candidates = candidate_pairs(sys, 2.5);
  const std::size_t all_pairs = 400u * 399u / 2u;
  EXPECT_LT(candidates.size(), all_pairs / 10);
}

}  // namespace
}  // namespace wfe::md
