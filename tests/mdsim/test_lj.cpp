// Lennard-Jones force/energy correctness.
#include "mdsim/lj.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::md {
namespace {

/// Two particles separated by `r` along x in a big box.
System dimer(double r, double box = 50.0) {
  System sys(2, box);
  sys.positions()[0] = Vec3{10.0, 10.0, 10.0};
  sys.positions()[1] = Vec3{10.0 + r, 10.0, 10.0};
  return sys;
}

TEST(Lj, RejectsBadParameters) {
  System sys = dimer(1.0);
  LjParams p;
  p.epsilon = 0.0;
  EXPECT_THROW((void)compute_lj_forces(sys, p), InvalidArgument);
}

TEST(Lj, PotentialMinimumAtTwoToTheOneSixth) {
  const LjParams p;
  const double rmin = std::pow(2.0, 1.0 / 6.0);
  const double at_min = lj_pair_energy(rmin * rmin, p);
  // Near the minimum the curve is flat and higher on both sides.
  EXPECT_LT(at_min, lj_pair_energy((rmin * 0.99) * (rmin * 0.99), p));
  EXPECT_LT(at_min, lj_pair_energy((rmin * 1.01) * (rmin * 1.01), p));
}

TEST(Lj, ShiftedPotentialZeroAtCutoff) {
  const LjParams p;
  EXPECT_DOUBLE_EQ(lj_pair_energy(p.cutoff * p.cutoff, p), 0.0);
  EXPECT_DOUBLE_EQ(lj_pair_energy(9.0, p), 0.0);  // beyond cutoff
}

TEST(Lj, PairEnergyAtSigmaIsShiftOnly) {
  // Unshifted U(sigma) = 0, so shifted value equals -U(rc).
  const LjParams p;
  const double rc2 = p.cutoff * p.cutoff;
  const double s6 = 1.0 / std::pow(rc2, 3);
  const double u_rc = 4.0 * (s6 * s6 - s6);
  EXPECT_NEAR(lj_pair_energy(1.0, p), -u_rc, 1e-12);
}

TEST(Lj, ForceAtMinimumIsZero) {
  const double rmin = std::pow(2.0, 1.0 / 6.0);
  System sys = dimer(rmin);
  const ForceResult fr = compute_lj_forces(sys, LjParams{});
  EXPECT_NEAR(sys.forces()[0].x, 0.0, 1e-10);
  EXPECT_EQ(fr.pair_interactions, 1u);
}

TEST(Lj, RepulsiveInsideMinimum) {
  System sys = dimer(1.0);
  (void)compute_lj_forces(sys, LjParams{});
  EXPECT_LT(sys.forces()[0].x, 0.0);  // pushed away (toward smaller x)
  EXPECT_GT(sys.forces()[1].x, 0.0);
}

TEST(Lj, AttractiveOutsideMinimum) {
  System sys = dimer(1.5);
  (void)compute_lj_forces(sys, LjParams{});
  EXPECT_GT(sys.forces()[0].x, 0.0);  // pulled together
  EXPECT_LT(sys.forces()[1].x, 0.0);
}

TEST(Lj, NewtonsThirdLawPairwise) {
  System sys = dimer(1.3);
  (void)compute_lj_forces(sys, LjParams{});
  EXPECT_DOUBLE_EQ(sys.forces()[0].x, -sys.forces()[1].x);
  EXPECT_DOUBLE_EQ(sys.forces()[0].y, -sys.forces()[1].y);
  EXPECT_DOUBLE_EQ(sys.forces()[0].z, -sys.forces()[1].z);
}

TEST(Lj, TotalForceIsZeroInBulk) {
  Xoshiro256 rng(5);
  System sys = System::fcc_lattice(3, 0.8442, 0.0, rng);
  (void)compute_lj_forces(sys, LjParams{});
  Vec3 total;
  for (const Vec3& f : sys.forces()) total += f;
  EXPECT_NEAR(total.x, 0.0, 1e-9);
  EXPECT_NEAR(total.y, 0.0, 1e-9);
  EXPECT_NEAR(total.z, 0.0, 1e-9);
}

TEST(Lj, NoInteractionBeyondCutoff) {
  System sys = dimer(3.0);  // beyond the 2.5 cutoff
  const ForceResult fr = compute_lj_forces(sys, LjParams{});
  EXPECT_EQ(fr.pair_interactions, 0u);
  EXPECT_EQ(fr.potential_energy, 0.0);
  EXPECT_EQ(sys.forces()[0].x, 0.0);
}

TEST(Lj, ForceMatchesNumericalGradient) {
  const LjParams p;
  for (double r : {1.05, 1.2, 1.5, 2.0, 2.4}) {
    System sys = dimer(r);
    (void)compute_lj_forces(sys, p);
    const double fx = sys.forces()[1].x;
    const double h = 1e-6;
    const double up = lj_pair_energy((r + h) * (r + h), p);
    const double dn = lj_pair_energy((r - h) * (r - h), p);
    const double numeric = -(up - dn) / (2.0 * h);
    EXPECT_NEAR(fx, numeric, 1e-4 * std::max(1.0, std::abs(numeric)))
        << "at r = " << r;
  }
}

TEST(Lj, VirialSignTracksForceDirection) {
  // Repulsive pair -> positive virial; attractive pair -> negative.
  System rep = dimer(1.0);
  EXPECT_GT(compute_lj_forces(rep, LjParams{}).virial, 0.0);
  System att = dimer(1.5);
  EXPECT_LT(compute_lj_forces(att, LjParams{}).virial, 0.0);
}

TEST(Lj, PeriodicImagesInteractAcrossBoundary) {
  System sys(2, 10.0);
  sys.positions()[0] = Vec3{0.2, 5.0, 5.0};
  sys.positions()[1] = Vec3{9.6, 5.0, 5.0};  // distance 0.6 through the wall
  const ForceResult fr = compute_lj_forces(sys, LjParams{});
  EXPECT_EQ(fr.pair_interactions, 1u);
  EXPECT_GT(fr.potential_energy, 0.0);  // strongly repulsive at 0.6 sigma
}

TEST(Lj, PressurePositiveInCompressedFluid) {
  Xoshiro256 rng(6);
  System sys = System::fcc_lattice(3, 1.2, 1.0, rng);  // dense
  const ForceResult fr = compute_lj_forces(sys, LjParams{});
  EXPECT_GT(pressure(sys, fr.virial), 0.0);
}

TEST(Lj, EnergyAgreesWithPairSum) {
  Xoshiro256 rng(7);
  System sys = System::fcc_lattice(2, 0.8, 0.0, rng);
  const LjParams p;
  const ForceResult fr = compute_lj_forces(sys, p);
  double manual = 0.0;
  for (std::size_t i = 0; i < sys.size(); ++i) {
    for (std::size_t j = i + 1; j < sys.size(); ++j) {
      manual += lj_pair_energy(
          sys.min_image(sys.positions()[i], sys.positions()[j]).norm2(), p);
    }
  }
  EXPECT_NEAR(fr.potential_energy, manual, 1e-9 * std::abs(manual));
}

}  // namespace
}  // namespace wfe::md
