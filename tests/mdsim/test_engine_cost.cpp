// MdEngine facade + MD cost-model properties.
#include <gtest/gtest.h>

#include "mdsim/cost_model.hpp"
#include "mdsim/engine.hpp"
#include "support/error.hpp"

namespace wfe::md {
namespace {

MdConfig small_config(std::uint64_t seed = 1) {
  MdConfig c;
  c.fcc_cells = 3;  // 108 atoms
  c.seed = seed;
  c.integrator.thermostat_tau = 0.2;
  c.integrator.target_temperature = c.temperature;
  return c;
}

TEST(MdEngine, ReportsAtomCount) {
  MdEngine engine(small_config());
  EXPECT_EQ(engine.atom_count(), 108u);
}

TEST(MdEngine, AdvanceRejectsNonPositiveStride) {
  MdEngine engine(small_config());
  EXPECT_THROW((void)engine.advance(0), InvalidArgument);
}

TEST(MdEngine, AdvanceAccumulatesSteps) {
  MdEngine engine(small_config());
  (void)engine.advance(5);
  const MdObservables obs = engine.advance(7);
  EXPECT_EQ(obs.total_md_steps, 12u);
  EXPECT_EQ(engine.total_md_steps(), 12u);
}

TEST(MdEngine, FrameHasThreeDoublesPerAtom) {
  MdEngine engine(small_config());
  (void)engine.advance(3);
  EXPECT_EQ(engine.frame().size(), engine.atom_count() * 3);
}

TEST(MdEngine, ObservablesArePhysical) {
  MdEngine engine(small_config());
  const MdObservables obs = engine.advance(50);
  EXPECT_LT(obs.potential_energy, 0.0);  // cohesive liquid
  EXPECT_GT(obs.kinetic_energy, 0.0);
  EXPECT_GT(obs.temperature, 0.0);
  EXPECT_NEAR(obs.temperature, 0.728, 0.4);
}

TEST(MdEngine, DeterministicAcrossInstances) {
  MdEngine a(small_config(9)), b(small_config(9));
  (void)a.advance(20);
  (void)b.advance(20);
  EXPECT_EQ(a.frame(), b.frame());
}

TEST(MdEngine, DifferentSeedsDiverge) {
  MdEngine a(small_config(1)), b(small_config(2));
  (void)a.advance(20);
  (void)b.advance(20);
  EXPECT_NE(a.frame(), b.frame());
}

TEST(MdEngine, FramesEvolveOverTime) {
  MdEngine engine(small_config());
  (void)engine.advance(1);
  const auto f1 = engine.frame();
  (void)engine.advance(10);
  EXPECT_NE(engine.frame(), f1);
}

TEST(MdCost, RejectsDegenerateInputs) {
  EXPECT_THROW((void)md_stage_profile(MdCostParams{}, 0, 10),
               InvalidArgument);
  EXPECT_THROW((void)md_stage_profile(MdCostParams{}, 100, 0),
               InvalidArgument);
}

TEST(MdCost, InstructionsScaleLinearlyInAtomsAndStride) {
  const MdCostParams p;
  const auto base = md_stage_profile(p, 1000, 100);
  EXPECT_DOUBLE_EQ(md_stage_profile(p, 2000, 100).instructions,
                   2.0 * base.instructions);
  EXPECT_DOUBLE_EQ(md_stage_profile(p, 1000, 200).instructions,
                   2.0 * base.instructions);
}

TEST(MdCost, WorkingSetScalesWithAtoms) {
  const MdCostParams p;
  EXPECT_DOUBLE_EQ(md_stage_profile(p, 1000, 1).working_set_bytes,
                   p.bytes_per_atom * 1000);
}

TEST(MdCost, ProfileCarriesCostParams) {
  MdCostParams p;
  p.base_ipc = 2.0;
  p.cache_sensitivity = 0.5;
  const auto prof = md_stage_profile(p, 10, 10);
  EXPECT_EQ(prof.base_ipc, 2.0);
  EXPECT_EQ(prof.cache_sensitivity, 0.5);
}

TEST(MdCost, FramePayloadBytes) {
  EXPECT_DOUBLE_EQ(frame_payload_bytes(1000), 1000.0 * 24.0);
}

}  // namespace
}  // namespace wfe::md
