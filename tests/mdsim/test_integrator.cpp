// Integrator physics: energy conservation (NVE), momentum conservation,
// thermostat behaviour, determinism.
#include "mdsim/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::md {
namespace {

System liquid(std::uint64_t seed, double temperature = 0.728) {
  Xoshiro256 rng(seed);
  return System::fcc_lattice(3, 0.8442, temperature, rng);  // 108 atoms
}

TEST(Integrator, RejectsNonPositiveTimestep) {
  IntegratorParams p;
  p.dt = 0.0;
  EXPECT_THROW(VelocityVerlet(LjParams{}, p), InvalidArgument);
}

TEST(Integrator, NveConservesEnergy) {
  System sys = liquid(1);
  IntegratorParams ip;
  ip.dt = 0.002;
  ip.thermostat_tau = 0.0;  // NVE
  VelocityVerlet vv(LjParams{}, ip);
  ForceResult fr = vv.initialize(sys);
  const double e0 = fr.potential_energy + sys.kinetic_energy();
  for (int s = 0; s < 400; ++s) fr = vv.step(sys);
  const double e1 = fr.potential_energy + sys.kinetic_energy();
  // Velocity Verlet at dt=0.002 drifts far less than 1% over 400 steps.
  EXPECT_NEAR(e1, e0, 0.01 * std::abs(e0));
}

TEST(Integrator, NveEnergyDriftShrinksWithTimestep) {
  auto drift = [](double dt) {
    System sys = liquid(2);
    IntegratorParams ip;
    ip.dt = dt;
    VelocityVerlet vv(LjParams{}, ip);
    ForceResult fr = vv.initialize(sys);
    const double e0 = fr.potential_energy + sys.kinetic_energy();
    const int steps = static_cast<int>(0.4 / dt);  // same physical time
    for (int s = 0; s < steps; ++s) fr = vv.step(sys);
    return std::abs(fr.potential_energy + sys.kinetic_energy() - e0);
  };
  EXPECT_LT(drift(0.001), drift(0.004));
}

TEST(Integrator, ConservesMomentum) {
  System sys = liquid(3);
  VelocityVerlet vv(LjParams{}, IntegratorParams{});
  (void)vv.initialize(sys);
  for (int s = 0; s < 100; ++s) (void)vv.step(sys);
  const Vec3 p = sys.total_momentum();
  EXPECT_NEAR(p.x, 0.0, 1e-8);
  EXPECT_NEAR(p.y, 0.0, 1e-8);
  EXPECT_NEAR(p.z, 0.0, 1e-8);
}

TEST(Integrator, PositionsStayInBox) {
  System sys = liquid(4);
  VelocityVerlet vv(LjParams{}, IntegratorParams{});
  (void)vv.initialize(sys);
  for (int s = 0; s < 50; ++s) (void)vv.step(sys);
  for (const Vec3& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box_length());
  }
}

TEST(Integrator, BerendsenDrivesTemperatureToTarget) {
  System sys = liquid(5, 2.0);  // start hot
  IntegratorParams ip;
  ip.dt = 0.002;
  ip.thermostat_tau = 0.05;  // strong coupling
  ip.target_temperature = 0.7;
  VelocityVerlet vv(LjParams{}, ip);
  (void)vv.initialize(sys);
  for (int s = 0; s < 2000; ++s) (void)vv.step(sys);
  EXPECT_NEAR(sys.temperature(), 0.7, 0.12);
}

TEST(Integrator, BerendsenHeatsColdSystem) {
  System sys = liquid(6, 0.1);  // start cold
  IntegratorParams ip;
  ip.thermostat_tau = 0.05;
  ip.target_temperature = 1.0;
  VelocityVerlet vv(LjParams{}, ip);
  (void)vv.initialize(sys);
  const double t0 = sys.temperature();
  for (int s = 0; s < 500; ++s) (void)vv.step(sys);
  EXPECT_GT(sys.temperature(), t0);
}

TEST(Integrator, DeterministicTrajectories) {
  System a = liquid(7), b = liquid(7);
  VelocityVerlet vva(LjParams{}, IntegratorParams{});
  VelocityVerlet vvb(LjParams{}, IntegratorParams{});
  (void)vva.initialize(a);
  (void)vvb.initialize(b);
  for (int s = 0; s < 25; ++s) {
    (void)vva.step(a);
    (void)vvb.step(b);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions()[i].x, b.positions()[i].x);
    EXPECT_EQ(a.velocities()[i].z, b.velocities()[i].z);
  }
}

TEST(Integrator, StepReturnsFreshForcesResult) {
  System sys = liquid(8);
  VelocityVerlet vv(LjParams{}, IntegratorParams{});
  (void)vv.initialize(sys);
  const ForceResult fr = vv.step(sys);
  EXPECT_GT(fr.pair_interactions, 0u);
  EXPECT_LT(fr.potential_energy, 0.0);  // cohesive liquid
}

}  // namespace
}  // namespace wfe::md
