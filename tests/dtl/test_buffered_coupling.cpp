// The buffered-coupling extension: capacity > 1 relaxes the no-buffering
// protocol while capacity == 1 stays bit-compatible with the paper.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dtl/coupling.hpp"
#include "dtl/memory_staging.hpp"
#include "dtl/plugin.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::dtl {
namespace {

TEST(BufferedCoupling, RejectsZeroCapacity) {
  EXPECT_THROW(CouplingChannel(1, 0), InvalidArgument);
}

TEST(BufferedCoupling, CapacityDefaultsToOne) {
  CouplingChannel ch(2);
  EXPECT_EQ(ch.capacity(), 1);
}

TEST(BufferedCoupling, WriterRunsAheadUpToCapacity) {
  CouplingChannel ch(1, 3);
  // Three writes complete without any read.
  for (std::uint64_t s = 0; s < 3; ++s) {
    ch.begin_write(s);
    ch.commit_write(s);
  }
  EXPECT_EQ(ch.committed_step(), 2);
  // The fourth write must wait for the first read.
  std::atomic<bool> fourth_done{false};
  std::thread writer([&] {
    ch.begin_write(3);
    ch.commit_write(3);
    fourth_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fourth_done.load());
  EXPECT_TRUE(ch.await_step(0, 0));
  ch.ack_read(0, 0);
  writer.join();
  EXPECT_TRUE(fourth_done.load());
}

TEST(BufferedCoupling, CapacityOneBlocksLikeThePaperProtocol) {
  CouplingChannel ch(1, 1);
  ch.begin_write(0);
  ch.commit_write(0);
  std::atomic<bool> second_done{false};
  std::thread writer([&] {
    ch.begin_write(1);
    ch.commit_write(1);
    second_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  EXPECT_TRUE(ch.await_step(0, 0));
  ch.ack_read(0, 0);
  writer.join();
}

TEST(BufferedCoupling, ReadersStillConsumeInOrder) {
  CouplingChannel ch(1, 4);
  for (std::uint64_t s = 0; s < 4; ++s) {
    ch.begin_write(s);
    ch.commit_write(s);
  }
  EXPECT_THROW((void)ch.await_step(0, 2), ProtocolError);
  EXPECT_TRUE(ch.await_step(0, 0));
  ch.ack_read(0, 0);
  EXPECT_TRUE(ch.await_step(0, 1));
}

TEST(BufferedCoupling, WriterKeepsAtMostCapacityChunksResident) {
  MemoryStaging staging;
  auto channel = std::make_shared<CouplingChannel>(1, 2);
  CoupledWriter writer(DtlPlugin(staging), channel, 0);
  CoupledReader reader(DtlPlugin(staging), channel, 0, 0);

  std::thread producer([&] {
    for (std::uint64_t s = 0; s < 8; ++s) {
      writer.put_step(s, PayloadKind::kScalarSeries, {1.0});
    }
    writer.finish();
  });
  for (std::uint64_t s = 0; s < 8; ++s) {
    ASSERT_TRUE(reader.get_step(s).has_value());
    EXPECT_LE(staging.size(), 3u);  // window of 2 + one being staged
  }
  producer.join();
  EXPECT_LE(staging.size(), 2u);
}

TEST(BufferedCoupling, SimulatedExecutorHonorsCapacity) {
  // C1.1 runs in the Idle Simulation regime: the writer outpaces the
  // analysis by ~2 s per step, so once the reader's initial R head-start
  // drains (around step 12) the capacity-1 simulation blocks in I^S every
  // step; a deep buffer absorbs the drift entirely over this horizon.
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  auto blocked = wl::paper_config("C1.1");
  blocked.spec.n_steps = 30;
  auto buffered = blocked;
  for (auto& m : buffered.spec.members) m.buffer_capacity = 30;

  const auto t_blocked = exec.run(blocked.spec).trace;
  const auto t_buffered = exec.run(buffered.spec).trace;
  const double idle_blocked =
      t_blocked.total_in_stage({0, -1}, core::StageKind::kSimIdle);
  const double idle_buffered =
      t_buffered.total_in_stage({0, -1}, core::StageKind::kSimIdle);
  EXPECT_GT(idle_blocked, 1.0);
  EXPECT_LT(idle_buffered, 1e-9);
}

TEST(BufferedCoupling, BufferingDoesNotChangeIdleAnalyzerRuns) {
  // C1.5's couplings are Idle Analyzer: the writer never waits, so the
  // buffer depth must not change the trace at all.
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  auto base = wl::paper_config("C1.5");
  base.spec.n_steps = 6;
  auto deep = base;
  for (auto& m : deep.spec.members) m.buffer_capacity = 4;
  const auto a = exec.run(base.spec).trace;
  const auto b = exec.run(deep.spec).trace;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].start, b.records()[i].start);
    EXPECT_EQ(a.records()[i].end, b.records()[i].end);
  }
}

TEST(BufferedCoupling, SpecValidatesCapacity) {
  auto cfg = wl::paper_config("Cc");
  cfg.spec.members[0].buffer_capacity = 0;
  EXPECT_THROW(cfg.spec.validate(wl::cori_like_platform()), SpecError);
}

}  // namespace
}  // namespace wfe::dtl
