// Tests for the chunk abstraction and its wire format.
#include <gtest/gtest.h>

#include <cstring>

#include "dtl/chunk.hpp"
#include "dtl/serde.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::dtl {
namespace {

Chunk positions_chunk(std::uint32_t member = 1, std::uint64_t step = 3,
                      std::size_t atoms = 5) {
  std::vector<double> xyz;
  Xoshiro256 rng(77);
  for (std::size_t i = 0; i < atoms * 3; ++i) xyz.push_back(rng.normal());
  return Chunk(ChunkKey{member, step}, PayloadKind::kPositions3N,
               std::move(xyz));
}

TEST(Chunk, KeyStringIsStable) {
  EXPECT_EQ((ChunkKey{2, 15}).str(), "m2/s15");
}

TEST(Chunk, PositionsRequireMultipleOfThree) {
  EXPECT_THROW(
      Chunk(ChunkKey{}, PayloadKind::kPositions3N, {1.0, 2.0}),
      InvalidArgument);
}

TEST(Chunk, AtomCount) {
  EXPECT_EQ(positions_chunk(1, 1, 7).atom_count(), 7u);
}

TEST(Chunk, AtomCountRejectsScalarPayload) {
  Chunk c(ChunkKey{}, PayloadKind::kScalarSeries, {1.0, 2.0});
  EXPECT_THROW((void)c.atom_count(), InvalidArgument);
}

TEST(Chunk, PayloadBytes) {
  EXPECT_EQ(positions_chunk(1, 1, 4).payload_bytes(), 4 * 3 * sizeof(double));
}

TEST(Chunk, KindNames) {
  EXPECT_STREQ(to_string(PayloadKind::kPositions3N), "positions3n");
  EXPECT_STREQ(to_string(PayloadKind::kScalarSeries), "scalars");
}

TEST(Serde, RoundTripPositions) {
  const Chunk original = positions_chunk(9, 42, 16);
  const Chunk back = deserialize(serialize(original));
  EXPECT_EQ(back, original);
}

TEST(Serde, RoundTripScalars) {
  const Chunk original(ChunkKey{3, 0}, PayloadKind::kScalarSeries,
                       {1.5, -2.5, 1e308, 0.0});
  EXPECT_EQ(deserialize(serialize(original)), original);
}

TEST(Serde, RoundTripEmptyPayload) {
  const Chunk original(ChunkKey{0, 0}, PayloadKind::kScalarSeries, {});
  EXPECT_EQ(deserialize(serialize(original)), original);
}

TEST(Serde, SerializedSizeMatches) {
  const Chunk c = positions_chunk();
  EXPECT_EQ(serialize(c).size(), serialized_size(c));
  EXPECT_EQ(serialized_size(c), kChunkHeaderBytes + c.payload_bytes());
}

TEST(Serde, RejectsTruncatedHeader) {
  std::vector<std::byte> tiny(10);
  EXPECT_THROW((void)deserialize(tiny), SerializationError);
}

TEST(Serde, RejectsBadMagic) {
  auto buf = serialize(positions_chunk());
  buf[0] = std::byte{0xFF};
  EXPECT_THROW((void)deserialize(buf), SerializationError);
}

TEST(Serde, RejectsUnknownVersion) {
  auto buf = serialize(positions_chunk());
  const std::uint32_t v = 99;
  std::memcpy(buf.data() + 4, &v, sizeof(v));
  EXPECT_THROW((void)deserialize(buf), SerializationError);
}

TEST(Serde, RejectsUnknownPayloadKind) {
  auto buf = serialize(positions_chunk());
  const std::uint32_t kind = 77;
  std::memcpy(buf.data() + 12, &kind, sizeof(kind));
  EXPECT_THROW((void)deserialize(buf), SerializationError);
}

TEST(Serde, RejectsTruncatedPayload) {
  auto buf = serialize(positions_chunk());
  buf.resize(buf.size() - 8);
  EXPECT_THROW((void)deserialize(buf), SerializationError);
}

TEST(Serde, RejectsOversizedBuffer) {
  auto buf = serialize(positions_chunk());
  buf.resize(buf.size() + 8);
  EXPECT_THROW((void)deserialize(buf), SerializationError);
}

TEST(Serde, DetectsPayloadCorruption) {
  auto buf = serialize(positions_chunk());
  buf[kChunkHeaderBytes + 3] ^= std::byte{0x01};
  EXPECT_THROW((void)deserialize(buf), SerializationError);
}

TEST(Serde, Fnv1aKnownValues) {
  // FNV-1a 64 of the empty input is the offset basis.
  EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ULL);
  // Differing inputs give differing hashes.
  const std::byte a[]{std::byte{1}};
  const std::byte b[]{std::byte{2}};
  EXPECT_NE(fnv1a64(a), fnv1a64(b));
}

// Property sweep: round-trips across many payload sizes.
class SerdeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerdeSizeSweep, RoundTrips) {
  Xoshiro256 rng(GetParam());
  std::vector<double> values;
  for (std::size_t i = 0; i < GetParam(); ++i) values.push_back(rng.normal());
  const Chunk c(ChunkKey{7, GetParam()}, PayloadKind::kScalarSeries,
                std::move(values));
  EXPECT_EQ(deserialize(serialize(c)), c);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerdeSizeSweep,
                         ::testing::Values(0, 1, 2, 3, 17, 100, 4096, 10000));

// Property sweep: single-bit flips anywhere in the buffer are rejected
// (either a header check or the checksum fires).
class BitFlipSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitFlipSweep, FlipIsDetected) {
  auto buf = serialize(positions_chunk(1, 2, 4));
  const std::size_t pos = GetParam() % buf.size();
  buf[pos] ^= std::byte{0x40};
  // The whole-buffer checksum makes every single-bit flip detectable.
  EXPECT_THROW((void)deserialize(buf), SerializationError)
      << "undetected corruption at byte " << pos;
}

INSTANTIATE_TEST_SUITE_P(Positions, BitFlipSweep,
                         ::testing::Values(0, 5, 9, 13, 17, 25, 33, 41, 49,
                                           61, 80, 120));

}  // namespace
}  // namespace wfe::dtl
