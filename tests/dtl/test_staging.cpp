// Backend-parameterized tests: MemoryStaging and FileStaging must behave
// identically through the StagingBackend interface.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>

#include "dtl/file_staging.hpp"
#include "dtl/memory_staging.hpp"

namespace wfe::dtl {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

class StagingTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      backend_ = std::make_unique<MemoryStaging>();
    } else {
      dir_ = std::filesystem::temp_directory_path() /
             ("wfens-staging-test-" + std::to_string(::getpid()));
      backend_ = std::make_unique<FileStaging>(dir_);
    }
  }

  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<StagingBackend> backend_;
  std::filesystem::path dir_;
};

TEST_P(StagingTest, MissingKeyReturnsNullopt) {
  EXPECT_FALSE(backend_->get("nope").has_value());
  EXPECT_FALSE(backend_->contains("nope"));
}

TEST_P(StagingTest, PutThenGetRoundTrips) {
  const auto data = bytes({1, 2, 3, 250});
  backend_->put("m0/s1", data);
  EXPECT_TRUE(backend_->contains("m0/s1"));
  EXPECT_EQ(backend_->get("m0/s1"), data);
}

TEST_P(StagingTest, OverwriteReplacesContent) {
  backend_->put("k", bytes({1}));
  backend_->put("k", bytes({2, 3}));
  EXPECT_EQ(backend_->get("k"), bytes({2, 3}));
  EXPECT_EQ(backend_->size(), 1u);
}

TEST_P(StagingTest, EraseRemovesKey) {
  backend_->put("k", bytes({9}));
  EXPECT_TRUE(backend_->erase("k"));
  EXPECT_FALSE(backend_->contains("k"));
  EXPECT_FALSE(backend_->erase("k"));
}

TEST_P(StagingTest, SizeAndBytesStored) {
  EXPECT_EQ(backend_->size(), 0u);
  EXPECT_EQ(backend_->bytes_stored(), 0u);
  backend_->put("a", bytes({1, 2, 3}));
  backend_->put("b", bytes({4, 5}));
  EXPECT_EQ(backend_->size(), 2u);
  EXPECT_EQ(backend_->bytes_stored(), 5u);
}

TEST_P(StagingTest, EmptyValueIsStorable) {
  backend_->put("empty", {});
  EXPECT_TRUE(backend_->contains("empty"));
  EXPECT_EQ(backend_->get("empty")->size(), 0u);
}

TEST_P(StagingTest, ManyKeysCoexist) {
  for (int i = 0; i < 50; ++i) {
    backend_->put("k" + std::to_string(i), bytes({i}));
  }
  EXPECT_EQ(backend_->size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(backend_->get("k" + std::to_string(i)), bytes({i}));
  }
}

TEST_P(StagingTest, ConcurrentPutsAndGetsAreSafe) {
  constexpr int kThreads = 4;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "/" + std::to_string(i % 10);
        backend_->put(key, bytes({t, i % 256}));
        (void)backend_->get(key);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(backend_->size(), kThreads * 10u);
}

INSTANTIATE_TEST_SUITE_P(Backends, StagingTest,
                         ::testing::Values("memory", "file"));

TEST(MemoryStaging, TierName) {
  MemoryStaging m;
  EXPECT_EQ(m.tier(), "memory");
}

TEST(MemoryStaging, ClearEmptiesStore) {
  MemoryStaging m;
  m.put("a", bytes({1}));
  m.clear();
  EXPECT_EQ(m.size(), 0u);
}

TEST(FileStaging, TierNameAndRoot) {
  const auto dir = std::filesystem::temp_directory_path() / "wfens-fs-tier";
  FileStaging f(dir);
  EXPECT_EQ(f.tier(), "file");
  EXPECT_EQ(f.root(), dir);
  std::filesystem::remove_all(dir);
}

TEST(FileStaging, KeysWithSlashesMapToFlatFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "wfens-fs-flat";
  FileStaging f(dir);
  f.put("m1/s2", bytes({7}));
  EXPECT_TRUE(f.contains("m1/s2"));
  EXPECT_TRUE(std::filesystem::exists(dir / "m1_s2.chunk"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace wfe::dtl
