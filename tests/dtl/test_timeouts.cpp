// Bounded waits in the coupling protocol and retrying DTL fetches: a hung
// or dead peer must surface as wfe::TimeoutError, not a deadlock.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "dtl/coupling.hpp"
#include "dtl/memory_staging.hpp"
#include "dtl/plugin.hpp"
#include "support/error.hpp"

namespace wfe::dtl {
namespace {

TEST(CouplingTimeout, ConstructorValidatesTimeout) {
  EXPECT_NO_THROW(CouplingChannel(1, 1, 0.0));
  EXPECT_NO_THROW(CouplingChannel(1, 1, 2.5));
  EXPECT_THROW(CouplingChannel(1, 1, -1.0), InvalidArgument);
  EXPECT_THROW(CouplingChannel(1, 1, std::nan("")), InvalidArgument);
}

TEST(CouplingTimeout, AwaitStepTimesOutWhenWriterHangs) {
  CouplingChannel channel(1, 1, 0.05);
  EXPECT_THROW((void)channel.await_step(0, 0), TimeoutError);
}

TEST(CouplingTimeout, BeginWriteTimesOutWhenReaderHangs) {
  CouplingChannel channel(1, 1, 0.05);
  channel.begin_write(0);  // no wait: nothing published yet
  channel.commit_write(0);
  // The reader never acks step 0, so the capacity-1 horizon blocks step 1.
  EXPECT_THROW(channel.begin_write(1), TimeoutError);
}

TEST(CouplingTimeout, InTimeProgressDoesNotTimeOut) {
  CouplingChannel channel(1, 1, 5.0);
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    channel.begin_write(0);
    channel.commit_write(0);
    channel.close();
  });
  EXPECT_TRUE(channel.await_step(0, 0));
  channel.ack_read(0, 0);
  writer.join();
  EXPECT_FALSE(channel.await_step(0, 1));  // closed, no timeout needed
}

TEST(CouplingTimeout, ZeroTimeoutKeepsUnboundedSemantics) {
  CouplingChannel channel(1, 1, 0.0);
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    channel.begin_write(0);
    channel.commit_write(0);
  });
  EXPECT_TRUE(channel.await_step(0, 0));
  writer.join();
}

TEST(FetchRetry, Validation) {
  FetchRetry retry;
  EXPECT_NO_THROW(retry.validate());
  retry.max_attempts = 0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.backoff_base_s = -1.0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.backoff_cap_s = retry.backoff_base_s / 2.0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
}

TEST(FetchRetry, SingleAttemptMatchesPlainRead) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  plugin.write(Chunk(ChunkKey{1, 0}, PayloadKind::kScalarSeries, {1.0, 2.0}));
  FetchRetry once;
  const Chunk chunk = plugin.read(ChunkKey{1, 0}, once);
  EXPECT_EQ(chunk.values().size(), 2u);
  EXPECT_THROW((void)plugin.read(ChunkKey{1, 9}, once), TimeoutError);
}

TEST(FetchRetry, SucceedsOnceTheChunkAppears) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  FetchRetry retry;
  retry.max_attempts = 200;
  retry.backoff_base_s = 1e-3;
  retry.backoff_cap_s = 1e-3;
  std::thread late_writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    DtlPlugin(staging).write(
        Chunk(ChunkKey{2, 5}, PayloadKind::kScalarSeries, {42.0}));
  });
  const Chunk chunk = plugin.read(ChunkKey{2, 5}, retry);
  late_writer.join();
  ASSERT_EQ(chunk.values().size(), 1u);
  EXPECT_DOUBLE_EQ(chunk.values()[0], 42.0);
}

TEST(FetchRetry, ExhaustionRaisesTimeoutError) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  FetchRetry retry;
  retry.max_attempts = 3;
  retry.backoff_base_s = 1e-4;
  try {
    (void)plugin.read(ChunkKey{0, 0}, retry);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("3 fetch attempts"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace wfe::dtl
