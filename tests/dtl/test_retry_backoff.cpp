// FetchRetry backoff determinism: the whole retry ladder is a pure function
// of (spec, key) — jitter included — so two reruns of the same fetch sleep
// the exact same delays regardless of thread interleaving.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dtl/plugin.hpp"
#include "support/error.hpp"

namespace wfe::dtl {
namespace {

FetchRetry jittered_retry() {
  FetchRetry retry;
  retry.max_attempts = 6;
  retry.backoff_base_s = 1e-3;
  retry.backoff_cap_s = 0.02;
  retry.jitter_frac = 0.3;
  retry.seed = 0xabcd;
  return retry;
}

TEST(FetchRetryBackoff, ScheduleIsIdenticalAcrossReruns) {
  const ChunkKey key{3, 17};
  const std::vector<double> first = jittered_retry().schedule(key);
  ASSERT_EQ(first.size(), 5u);  // max_attempts - 1
  for (int rerun = 0; rerun < 3; ++rerun) {
    const std::vector<double> again = jittered_retry().schedule(key);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i], first[i]) << "attempt " << i + 2;  // exact
      EXPECT_EQ(jittered_retry().backoff_delay(key, static_cast<int>(i) + 2),
                first[i]);
    }
  }
}

TEST(FetchRetryBackoff, JitterStaysInsideItsBand) {
  const FetchRetry retry = jittered_retry();
  const ChunkKey key{1, 4};
  const std::vector<double> delays = retry.schedule(key);
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const double ladder =
        std::min(retry.backoff_base_s * std::pow(2.0, static_cast<double>(i)),
                 retry.backoff_cap_s);
    EXPECT_GE(delays[i], ladder * (1.0 - retry.jitter_frac));
    EXPECT_LE(delays[i], ladder * (1.0 + retry.jitter_frac));
  }
}

TEST(FetchRetryBackoff, ZeroJitterIsTheExactExponentialLadder) {
  FetchRetry retry = jittered_retry();
  retry.jitter_frac = 0.0;
  const std::vector<double> delays = retry.schedule({0, 0});
  ASSERT_EQ(delays.size(), 5u);
  EXPECT_DOUBLE_EQ(delays[0], 1e-3);
  EXPECT_DOUBLE_EQ(delays[1], 2e-3);
  EXPECT_DOUBLE_EQ(delays[2], 4e-3);
  EXPECT_DOUBLE_EQ(delays[3], 8e-3);
  EXPECT_DOUBLE_EQ(delays[4], 16e-3);
}

TEST(FetchRetryBackoff, KeysAndSeedsGetIndependentJitterStreams) {
  const FetchRetry retry = jittered_retry();
  const std::vector<double> a = retry.schedule({0, 1});
  const std::vector<double> b = retry.schedule({0, 2});
  EXPECT_NE(a, b);

  FetchRetry reseeded = retry;
  reseeded.seed += 1;
  EXPECT_NE(reseeded.schedule({0, 1}), a);
}

TEST(FetchRetryBackoff, ValidateRejectsBadConfigs) {
  FetchRetry retry;
  retry.jitter_frac = 1.0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.jitter_frac = -0.1;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.max_attempts = 0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.backoff_base_s = -1.0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = jittered_retry();
  EXPECT_NO_THROW(retry.validate());
}

}  // namespace
}  // namespace wfe::dtl
