// Tests for the synchronous coupling protocol: the no-buffering invariant
// W_i < R_i < W_{i+1} of the paper's execution model (§2.1, §3.1).
#include "dtl/coupling.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace wfe::dtl {
namespace {

TEST(Coupling, RequiresAtLeastOneReader) {
  EXPECT_THROW(CouplingChannel{0}, InvalidArgument);
}

TEST(Coupling, InitialState) {
  CouplingChannel ch(2);
  EXPECT_EQ(ch.reader_count(), 2);
  EXPECT_EQ(ch.committed_step(), -1);
  EXPECT_FALSE(ch.closed());
}

TEST(Coupling, FirstWriteNeedsNoReaders) {
  CouplingChannel ch(1);
  ch.begin_write(0);  // must not block
  ch.commit_write(0);
  EXPECT_EQ(ch.committed_step(), 0);
}

TEST(Coupling, OutOfOrderWriteThrows) {
  CouplingChannel ch(1);
  EXPECT_THROW(ch.begin_write(1), ProtocolError);
}

TEST(Coupling, DoubleBeginThrows) {
  CouplingChannel ch(1);
  ch.begin_write(0);
  EXPECT_THROW(ch.begin_write(0), ProtocolError);
}

TEST(Coupling, CommitWithoutBeginThrows) {
  CouplingChannel ch(1);
  EXPECT_THROW(ch.commit_write(0), ProtocolError);
}

TEST(Coupling, ReaderAwaitOutOfOrderThrows) {
  CouplingChannel ch(1);
  EXPECT_THROW((void)ch.await_step(0, 1), ProtocolError);
}

TEST(Coupling, ReaderIndexOutOfRangeThrows) {
  CouplingChannel ch(1);
  EXPECT_THROW((void)ch.await_step(1, 0), InvalidArgument);
  EXPECT_THROW(ch.ack_read(-1, 0), InvalidArgument);
}

TEST(Coupling, AckOfUncommittedStepThrows) {
  CouplingChannel ch(1);
  EXPECT_THROW(ch.ack_read(0, 0), ProtocolError);
}

TEST(Coupling, DoubleAckThrows) {
  CouplingChannel ch(1);
  ch.begin_write(0);
  ch.commit_write(0);
  EXPECT_TRUE(ch.await_step(0, 0));
  ch.ack_read(0, 0);
  EXPECT_THROW(ch.ack_read(0, 0), ProtocolError);
}

TEST(Coupling, AwaitAfterCloseReturnsFalse) {
  CouplingChannel ch(1);
  ch.close();
  EXPECT_FALSE(ch.await_step(0, 0));
  EXPECT_TRUE(ch.closed());
}

TEST(Coupling, CommittedStepStillReadableAfterClose) {
  CouplingChannel ch(1);
  ch.begin_write(0);
  ch.commit_write(0);
  ch.close();
  EXPECT_TRUE(ch.await_step(0, 0));
}

TEST(Coupling, WriterBlocksUntilAllReadersAck) {
  CouplingChannel ch(2);
  ch.begin_write(0);
  ch.commit_write(0);

  std::atomic<bool> second_write_done{false};
  std::thread writer([&] {
    ch.begin_write(1);  // must wait for both readers
    ch.commit_write(1);
    second_write_done = true;
  });

  EXPECT_TRUE(ch.await_step(0, 0));
  ch.ack_read(0, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_write_done.load());  // reader 1 still pending

  EXPECT_TRUE(ch.await_step(1, 0));
  ch.ack_read(1, 0);
  writer.join();
  EXPECT_TRUE(second_write_done.load());
  EXPECT_EQ(ch.committed_step(), 1);
}

TEST(Coupling, ReaderBlocksUntilCommit) {
  CouplingChannel ch(1);
  std::atomic<bool> got{false};
  std::thread reader([&] {
    EXPECT_TRUE(ch.await_step(0, 0));
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ch.begin_write(0);
  ch.commit_write(0);
  reader.join();
  EXPECT_TRUE(got.load());
}

TEST(Coupling, CloseUnblocksParkedWriter) {
  CouplingChannel ch(1);
  ch.begin_write(0);
  ch.commit_write(0);
  std::thread writer([&] {
    EXPECT_THROW(ch.begin_write(1), ProtocolError);  // closed while waiting
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  writer.join();
}

TEST(Coupling, FullProtocolManySteps) {
  // One writer, three readers, 25 steps: the no-buffering invariant holds
  // throughout (checked internally by the channel's ProtocolError guards).
  constexpr int kReaders = 3;
  constexpr std::uint64_t kSteps = 25;
  CouplingChannel ch(kReaders);
  std::vector<std::thread> threads;

  threads.emplace_back([&] {
    for (std::uint64_t s = 0; s < kSteps; ++s) {
      ch.begin_write(s);
      ch.commit_write(s);
    }
    ch.close();
  });
  std::vector<std::uint64_t> seen(kReaders, 0);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (std::uint64_t s = 0; s < kSteps; ++s) {
        if (!ch.await_step(r, s)) break;
        ch.ack_read(r, s);
        seen[static_cast<std::size_t>(r)] = s + 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], kSteps);
  }
}

}  // namespace
}  // namespace wfe::dtl
