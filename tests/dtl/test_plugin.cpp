// Tests for the DTL plugin and the coupled writer/reader endpoints.
#include "dtl/plugin.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "dtl/memory_staging.hpp"
#include "dtl/serde.hpp"
#include "support/error.hpp"

namespace wfe::dtl {
namespace {

Chunk chunk(std::uint32_t member, std::uint64_t step) {
  return Chunk(ChunkKey{member, step}, PayloadKind::kScalarSeries,
               {static_cast<double>(step), 1.0, 2.0});
}

TEST(DtlPlugin, WriteReadRoundTrip) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  plugin.write(chunk(1, 0));
  EXPECT_TRUE(plugin.exists(ChunkKey{1, 0}));
  EXPECT_EQ(plugin.read(ChunkKey{1, 0}), chunk(1, 0));
}

TEST(DtlPlugin, ReadMissingThrows) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  EXPECT_THROW((void)plugin.read(ChunkKey{9, 9}), Error);
}

TEST(DtlPlugin, ReleaseErasesChunk) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  plugin.write(chunk(1, 0));
  EXPECT_TRUE(plugin.release(ChunkKey{1, 0}));
  EXPECT_FALSE(plugin.exists(ChunkKey{1, 0}));
  EXPECT_FALSE(plugin.release(ChunkKey{1, 0}));
}

TEST(DtlPlugin, StagedBytesAreSerializedForm) {
  MemoryStaging staging;
  DtlPlugin plugin(staging);
  plugin.write(chunk(2, 7));
  const auto raw = staging.get(ChunkKey{2, 7}.str());
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(deserialize(*raw), chunk(2, 7));
}

TEST(CoupledEndpoints, WriterNeedsChannel) {
  MemoryStaging staging;
  EXPECT_THROW(CoupledWriter(DtlPlugin(staging), nullptr, 0),
               InvalidArgument);
}

TEST(CoupledEndpoints, ReaderIndexValidated) {
  MemoryStaging staging;
  auto channel = std::make_shared<CouplingChannel>(1);
  EXPECT_THROW(CoupledReader(DtlPlugin(staging), channel, 0, 1),
               InvalidArgument);
}

TEST(CoupledEndpoints, SingleCouplingStreams) {
  MemoryStaging staging;
  auto channel = std::make_shared<CouplingChannel>(1);
  CoupledWriter writer(DtlPlugin(staging), channel, 5);
  CoupledReader reader(DtlPlugin(staging), channel, 5, 0);

  constexpr std::uint64_t kSteps = 10;
  std::thread producer([&] {
    for (std::uint64_t s = 0; s < kSteps; ++s) {
      writer.put_step(s, PayloadKind::kScalarSeries,
                      {static_cast<double>(s)});
    }
    writer.finish();
  });

  for (std::uint64_t s = 0; s < kSteps; ++s) {
    const auto got = reader.get_step(s);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->key().step, s);
    EXPECT_EQ(got->values()[0], static_cast<double>(s));
  }
  EXPECT_FALSE(reader.get_step(kSteps).has_value());  // writer finished
  producer.join();
}

TEST(CoupledEndpoints, NoBufferingKeepsAtMostOneResidentChunk) {
  MemoryStaging staging;
  auto channel = std::make_shared<CouplingChannel>(1);
  CoupledWriter writer(DtlPlugin(staging), channel, 0);
  CoupledReader reader(DtlPlugin(staging), channel, 0, 0);

  std::thread producer([&] {
    for (std::uint64_t s = 0; s < 5; ++s) {
      writer.put_step(s, PayloadKind::kScalarSeries, {1.0});
    }
    writer.finish();
  });
  for (std::uint64_t s = 0; s < 5; ++s) {
    ASSERT_TRUE(reader.get_step(s).has_value());
    // The writer reclaims the drained chunk before staging the next, so
    // at most two chunks (draining + fresh) ever coexist.
    EXPECT_LE(staging.size(), 2u);
  }
  producer.join();
  EXPECT_LE(staging.size(), 1u);  // only the final chunk may remain
}

TEST(CoupledEndpoints, TwoReadersSeeTheSameChunks) {
  MemoryStaging staging;
  auto channel = std::make_shared<CouplingChannel>(2);
  CoupledWriter writer(DtlPlugin(staging), channel, 3);
  CoupledReader r0(DtlPlugin(staging), channel, 3, 0);
  CoupledReader r1(DtlPlugin(staging), channel, 3, 1);

  constexpr std::uint64_t kSteps = 6;
  std::vector<double> seen0, seen1;
  std::thread producer([&] {
    for (std::uint64_t s = 0; s < kSteps; ++s) {
      writer.put_step(s, PayloadKind::kScalarSeries,
                      {static_cast<double>(s) * 2.0});
    }
    writer.finish();
  });
  std::thread consumer1([&] {
    for (std::uint64_t s = 0; s < kSteps; ++s) {
      const auto c = r1.get_step(s);
      ASSERT_TRUE(c.has_value());
      seen1.push_back(c->values()[0]);
    }
  });
  for (std::uint64_t s = 0; s < kSteps; ++s) {
    const auto c = r0.get_step(s);
    ASSERT_TRUE(c.has_value());
    seen0.push_back(c->values()[0]);
  }
  producer.join();
  consumer1.join();
  EXPECT_EQ(seen0, seen1);
  EXPECT_EQ(seen0.size(), kSteps);
}

}  // namespace
}  // namespace wfe::dtl
