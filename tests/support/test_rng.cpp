// Tests for the deterministic RNG stack.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace wfe {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicGivenSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, Uniform01StaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanIsAboutHalf) {
  Xoshiro256 rng(10);
  double sum = 0.0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, UniformRespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Xoshiro, BelowIsAlwaysInRange) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowCoversAllResidues) {
  Xoshiro256 rng(14);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Xoshiro, NormalHasZeroMeanUnitVariance) {
  Xoshiro256 rng(15);
  double sum = 0.0, sum2 = 0.0;
  constexpr int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Xoshiro, SplitStreamsAreIndependentlyDeterministic) {
  Xoshiro256 parent1(42), parent2(42);
  Xoshiro256 child1 = parent1.split();
  Xoshiro256 child2 = parent2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1(), child2());
  // Child and parent produce different streams.
  Xoshiro256 parent(42);
  Xoshiro256 child = parent.split();
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (parent() != child()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace wfe
