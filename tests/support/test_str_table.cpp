// Tests for string helpers and the table renderer used by the benches.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace wfe {
namespace {

TEST(Str, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Str, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.0, 0), "-1");
}

TEST(Str, Sci) { EXPECT_EQ(sci(0.000123, 2), "1.23e-04"); }

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(6.0 * 1024 * 1024), "6.0 MiB");
  EXPECT_EQ(human_bytes(1024.0 * 1024 * 1024), "1.0 GiB");
}

TEST(Str, HumanSeconds) {
  EXPECT_EQ(human_seconds(1.25), "1.250 s");
  EXPECT_EQ(human_seconds(0.31), "310.000 ms");
  EXPECT_EQ(human_seconds(42e-6), "42.000 us");
  EXPECT_EQ(human_seconds(5e-9), "5.0 ns");
}

TEST(Str, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), InvalidArgument); }

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"c"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n3,4\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  t.add_row({"", "", ""});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace wfe
