// Unit and property tests for the statistics helpers (Eq. 9 depends on the
// population standard deviation being exact).
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanSimple) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanSingleValue) {
  const std::vector<double> xs{7.25};
  EXPECT_DOUBLE_EQ(mean(xs), 7.25);
}

TEST(Stats, PopulationStddevMatchesHandComputation) {
  // Values 2, 4, 4, 4, 5, 5, 7, 9: classic example with stddev exactly 2.
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev_population(xs), 2.0);
}

TEST(Stats, PopulationStddevOfConstantIsZero) {
  const std::vector<double> xs{3.3, 3.3, 3.3};
  EXPECT_NEAR(stddev_population(xs), 0.0, 1e-12);
}

TEST(Stats, SampleStddevLargerThanPopulation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 10.0};
  EXPECT_GT(stddev_sample(xs), stddev_population(xs));
}

TEST(Stats, SampleStddevNeedsTwoValues) {
  const std::vector<double> xs{5.0};
  EXPECT_EQ(stddev_sample(xs), 0.0);
}

TEST(Stats, MedianOddCount) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, MedianDoesNotMutateInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  const std::vector<double> copy = xs;
  (void)median(xs);
  EXPECT_EQ(xs, copy);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, -0.1), InvalidArgument);
  EXPECT_THROW((void)quantile(xs, 1.1), InvalidArgument);
}

TEST(Stats, SummarizeConsistency) {
  const std::vector<double> xs{2.0, 8.0, 4.0, 6.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Xoshiro256 rng(11);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev_population(), stddev_population(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Xoshiro256 rng(12);
  RunningStats a, b, whole;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance_population(), whole.variance_population(), 1e-10);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats rs;
  rs.add(4.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.sum(), 0.0);
}

// Property sweep: mean - stddev <= mean <= max for random samples of
// several sizes (the inequality Eq. 9's objective relies on).
class StatsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StatsPropertyTest, MeanMinusStddevBelowMeanBelowMax) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < GetParam(); ++i) xs.push_back(rng.uniform(0.0, 10.0));
  const double m = mean(xs);
  const double sd = stddev_population(xs);
  EXPECT_LE(m - sd, m);
  EXPECT_LE(m, *std::max_element(xs.begin(), xs.end()) + 1e-12);
  EXPECT_GE(sd, 0.0);
}

TEST_P(StatsPropertyTest, QuantileIsMonotoneInQ) {
  Xoshiro256 rng(1000 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < GetParam(); ++i) xs.push_back(rng.normal());
  double prev = quantile(xs, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = quantile(xs, q);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatsPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 33, 100, 257));

}  // namespace
}  // namespace wfe
