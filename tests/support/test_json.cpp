// The minimal JSON reader: accepted grammar, typed access, rejection of
// malformed documents, and the escape helper the exporters rely on.
#include "support/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/error.hpp"

namespace wfe::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_number(), 42.0);
  EXPECT_EQ(parse("-3.5").as_number(), -3.5);
  EXPECT_EQ(parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse("\"\"").as_string(), "");
}

TEST(JsonParse, FullPrecisionRoundTrip) {
  // %.17g output of an awkward double must come back exactly.
  EXPECT_EQ(parse("0.10000000000000001").as_number(), 0.1);
  EXPECT_EQ(parse("8006000.0000000009").as_number(), 8006000.0000000009);
}

TEST(JsonParse, Arrays) {
  const Value v = parse("[1, 2, 3]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.as_array().size(), 3u);
  EXPECT_EQ(v.as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_EQ(parse("[[\"x\"]]").as_array()[0].as_array()[0].as_string(), "x");
}

TEST(JsonParse, Objects) {
  const Value v = parse(R"({"a": 1, "b": {"c": [true]}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_number(), 1.0);
  EXPECT_EQ(v.at("b").at("c").as_array()[0].as_bool(), true);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_THROW(v.at("missing"), SerializationError);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb\tc")").as_string(), "a\nb\tc");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
}

TEST(JsonParse, WhitespaceTolerant) {
  EXPECT_EQ(parse("  \n\t {\"a\": 1}  \n").at("a").as_number(), 1.0);
}

TEST(JsonParse, MalformedThrows) {
  const char* cases[] = {
      "",          "{",           "}",        "[1,",     "[1,]",
      "{\"a\":}",  "{\"a\" 1}",   "{a: 1}",   "tru",     "nul",
      "01x",       "\"unterminated", "1 2",   "[1] x",   "{\"a\":1,}",
      "\"bad\\q\"",
  };
  for (const char* text : cases) {
    EXPECT_THROW(parse(text), SerializationError) << "input: " << text;
  }
}

TEST(JsonParse, DeepNestingIsGuardedNotCrashing) {
  std::string deep;
  for (int i = 0; i < 10000; ++i) deep += "[";
  EXPECT_THROW(parse(deep), SerializationError);
}

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_string(), SerializationError);
  EXPECT_THROW(v.as_number(), SerializationError);
  EXPECT_THROW(v.as_object(), SerializationError);
  EXPECT_THROW(v.at("k"), SerializationError);
  EXPECT_THROW(parse("3").as_array(), SerializationError);
  EXPECT_THROW(parse("3").as_bool(), SerializationError);
}

TEST(JsonEscape, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb"), "a\\nb");
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonEscape, RoundTripsThroughParse) {
  const std::string nasty = "quote\" slash\\ nl\n tab\t ctl\x02 end";
  const Value v = parse("\"" + escape(nasty) + "\"");
  EXPECT_EQ(v.as_string(), nasty);
}

}  // namespace
}  // namespace wfe::json
