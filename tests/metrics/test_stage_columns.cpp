// Differential proof that the columnar (SoA) stage buffer is equivalent to
// recording AoS StageRecords directly: fuzzed push streams materialize to a
// Trace that is byte-identical to `Trace(std::vector<StageRecord>)` over the
// same stages, the running counter total equals the sum over the merged
// records, and the per-kind counts match. This is the contract that lets the
// replay hot path (src/runtime/simulated_executor.cpp) swap representations
// without disturbing golden traces or any paper table.
//
// This TU also overrides global operator new/delete with counting hooks to
// prove the buffer's zero-allocation steady state: after the columns reach
// their high-water capacity, a full replay-shaped cycle of pushes + clear()
// must not touch the allocator. The override is process-wide, so — like
// simengine/test_queue_equivalence.cpp — this TU gets its own test binary.
#include "metrics/trace.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "support/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace wfe::met {
namespace {

/// One fuzzed scenario: `n` stages with clustered start times (many exact
/// ties, to exercise the stable sort's tie-break) across a few components.
std::vector<StageRecord> fuzz_stages(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<StageRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StageRecord r;
    r.component.member = static_cast<std::uint32_t>(rng.below(4));
    r.component.analysis = static_cast<std::int32_t>(rng.below(3)) - 1;
    r.step = rng.below(50);
    r.kind = static_cast<core::StageKind>(rng.below(core::kStageKindCount));
    // Quantized starts: roughly 1-in-8 stages share an exact start time
    // with another, so the (start, component) tie-break and the stable
    // insertion-order tie-break both carry weight.
    r.start = static_cast<double>(rng.below(n / 8 + 1));
    r.end = r.start + rng.uniform01();
    const bool compute = r.kind == core::StageKind::kSimulate ||
                         r.kind == core::StageKind::kAnalyze;
    if (compute) {
      r.counters.instructions = 1e9 * rng.uniform01();
      r.counters.cycles = 1e9 * rng.uniform01();
      r.counters.llc_references = 1e7 * rng.uniform01();
      r.counters.llc_misses = 1e6 * rng.uniform01();
    }
    out.push_back(r);
  }
  return out;
}

/// Push the scenario through a StageColumns exactly the way the replay
/// does: the counters overload for compute stages, the plain one otherwise.
void push_all(StageColumns& columns, const std::vector<StageRecord>& stages) {
  for (const StageRecord& r : stages) {
    const bool compute = r.kind == core::StageKind::kSimulate ||
                         r.kind == core::StageKind::kAnalyze;
    if (compute) {
      columns.push(r.component, r.step, r.kind, r.start, r.end, r.counters);
    } else {
      columns.push(r.component, r.step, r.kind, r.start, r.end);
    }
  }
}

void expect_identical(const Trace& soa, const Trace& aos,
                      std::uint64_t seed) {
  ASSERT_EQ(soa.size(), aos.size()) << "seed " << seed;
  const auto a = soa.records();
  const auto b = aos.records();
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise field comparison: the contract is byte identity, not
    // tolerance — memcmp on the doubles distinguishes -0.0 and NaN too.
    EXPECT_EQ(a[i].component, b[i].component) << "seed " << seed << " @" << i;
    EXPECT_EQ(a[i].step, b[i].step) << "seed " << seed << " @" << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "seed " << seed << " @" << i;
    EXPECT_EQ(std::memcmp(&a[i].start, &b[i].start, sizeof(double)), 0)
        << "seed " << seed << " @" << i;
    EXPECT_EQ(std::memcmp(&a[i].end, &b[i].end, sizeof(double)), 0)
        << "seed " << seed << " @" << i;
    EXPECT_EQ(std::memcmp(&a[i].counters, &b[i].counters,
                          sizeof(plat::HwCounters)),
              0)
        << "seed " << seed << " @" << i;
  }
}

TEST(StageColumns, FuzzedMergeIsByteIdenticalToAosTrace) {
  StageColumns columns;  // reused across scenarios, like across replays
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::size_t n = 1 + static_cast<std::size_t>(seed * 37 % 600);
    const std::vector<StageRecord> stages = fuzz_stages(seed, n);
    push_all(columns, stages);
    const Trace soa = columns.take_trace();
    const Trace aos = Trace(stages);
    expect_identical(soa, aos, seed);
  }
}

TEST(StageColumns, CounterTotalAndKindCountsMatchTheMergedTrace) {
  StageColumns columns;
  const std::vector<StageRecord> stages = fuzz_stages(7, 400);
  push_all(columns, stages);

  plat::HwCounters expected_total;
  std::array<std::uint64_t, core::kStageKindCount> expected_counts{};
  for (const StageRecord& r : stages) {
    expected_total += r.counters;
    ++expected_counts[static_cast<std::size_t>(r.kind)];
  }

  // The running accumulator must equal the exact left-to-right push-order
  // sum (bitwise: FP addition is order-sensitive and the replay flushes
  // this total into ExecutionResult verbatim).
  const plat::HwCounters& total = columns.counter_total();
  EXPECT_EQ(std::memcmp(&total, &expected_total, sizeof total), 0);
  for (std::size_t k = 0; k < core::kStageKindCount; ++k) {
    EXPECT_EQ(columns.kind_count(static_cast<core::StageKind>(k)),
              expected_counts[k])
        << "kind " << k;
  }

  // take_trace resets both.
  (void)columns.take_trace();
  EXPECT_TRUE(columns.empty());
  const plat::HwCounters& zero = columns.counter_total();
  EXPECT_EQ(zero.instructions, 0.0);
  EXPECT_EQ(columns.kind_count(core::StageKind::kSimulate), 0u);
}

TEST(StageColumns, ClearRetainsCapacityAcrossReplays) {
  StageColumns columns;
  const std::vector<StageRecord> stages = fuzz_stages(11, 500);
  push_all(columns, stages);
  columns.clear();
  EXPECT_TRUE(columns.empty());
  push_all(columns, stages);
  EXPECT_EQ(columns.size(), stages.size());
}

TEST(StageColumns, SteadyStatePushesMakeZeroAllocations) {
  // The zero-allocation acceptance hook for the replay push path: the
  // warm-up replay drives every column (and the counters side array) to
  // its high-water capacity; subsequent replay-shaped cycles of pushes +
  // clear() must not touch the global allocator at all. take_trace() is
  // excluded — materializing an owning Trace allocates by design; it runs
  // once per replay, not per event.
  StageColumns columns;
  const std::vector<StageRecord> stages = fuzz_stages(23, 2000);

  push_all(columns, stages);  // warm-up: reach high-water capacity
  columns.clear();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int replay = 0; replay < 5; ++replay) {
    push_all(columns, stages);
    columns.clear();
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state stage pushes must not allocate";
}

}  // namespace
}  // namespace wfe::met
