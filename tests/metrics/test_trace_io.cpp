// WFET trace persistence round-trips and malformation handling.
#include "metrics/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::met {
namespace {

using core::StageKind;

Trace sample_trace() {
  std::vector<StageRecord> records{
      {{0, -1}, 0, StageKind::kSimulate, 0.0, 1.5,
       plat::HwCounters{1e9, 2e9, 1e7, 4e5}},
      {{0, -1}, 0, StageKind::kSimIdle, 1.5, 1.5, {}},
      {{0, -1}, 0, StageKind::kWrite, 1.5, 1.501, {}},
      {{0, 0}, 0, StageKind::kAnaIdle, 0.0, 1.501, {}},
      {{0, 0}, 0, StageKind::kRead, 1.501, 1.6, {}},
      {{0, 0}, 0, StageKind::kAnalyze, 1.6, 2.9,
       plat::HwCounters{5e8, 3e9, 5e7, 6e6}},
  };
  return Trace(std::move(records));
}

bool traces_equal(const Trace& a, const Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const StageRecord& x = a.records()[i];
    const StageRecord& y = b.records()[i];
    if (!(x.component == y.component) || x.step != y.step ||
        x.kind != y.kind || x.start != y.start || x.end != y.end ||
        x.counters.instructions != y.counters.instructions ||
        x.counters.cycles != y.counters.cycles ||
        x.counters.llc_references != y.counters.llc_references ||
        x.counters.llc_misses != y.counters.llc_misses) {
      return false;
    }
  }
  return true;
}

TEST(TraceIo, MnemonicsAreStable) {
  EXPECT_EQ(stage_mnemonic(StageKind::kSimulate), "S");
  EXPECT_EQ(stage_mnemonic(StageKind::kSimIdle), "IS");
  EXPECT_EQ(stage_mnemonic(StageKind::kWrite), "W");
  EXPECT_EQ(stage_mnemonic(StageKind::kRead), "R");
  EXPECT_EQ(stage_mnemonic(StageKind::kAnalyze), "A");
  EXPECT_EQ(stage_mnemonic(StageKind::kAnaIdle), "IA");
  EXPECT_EQ(stage_mnemonic(StageKind::kFault), "F");
  EXPECT_EQ(stage_mnemonic(StageKind::kBackoff), "B");
  EXPECT_EQ(stage_mnemonic(StageKind::kCheckpoint), "CP");
  EXPECT_EQ(stage_mnemonic(StageKind::kRestart), "RS");
}

TEST(TraceIo, ResilienceKindsRoundTripExactly) {
  // A trace as the fault-injecting executor would emit it: killed stages,
  // backoffs, checkpoints and a restart, interleaved with normal stages.
  std::vector<StageRecord> records{
      {{0, -1}, 0, StageKind::kSimulate, 0.0, 1.5,
       plat::HwCounters{1e9, 2e9, 1e7, 4e5}},
      {{0, -1}, 1, StageKind::kFault, 1.5, 1.9, {}},
      {{0, -1}, 1, StageKind::kBackoff, 1.9, 2.4, {}},
      {{0, -1}, 1, StageKind::kCheckpoint, 2.4, 2.9, {}},
      {{0, 0}, 1, StageKind::kFault, 2.0, 2.2, {}},
      {{0, -1}, 0, StageKind::kRestart, 3.0, 5.0, {}},
      {{0, -1}, 1, StageKind::kSimulate, 5.0, 6.5,
       plat::HwCounters{1e9, 2e9, 1e7, 4e5}},
  };
  const Trace original(std::move(records));
  const Trace back = trace_from_text(trace_to_text(original));
  EXPECT_TRUE(traces_equal(original, back));
  const Trace file_back = trace_from_text(trace_to_text(back));
  EXPECT_TRUE(traces_equal(original, file_back));
}

TEST(TraceIo, FaultyExecutionRoundTripsBitExactly) {
  rt::SimulatedOptions options;
  options.faults = wl::node_crashes(150.0, 15.0);
  options.recovery.kind = res::RecoveryKind::kCheckpointRestart;
  options.recovery.checkpoint_period = 2;
  options.recovery.max_restarts = 50;
  rt::SimulatedExecutor exec(wl::cori_like_platform(), options);
  auto cfg = wl::paper_config("C1.5");
  cfg.spec.n_steps = 6;
  const rt::ExecutionResult result = exec.run(cfg.spec);
  ASSERT_GT(result.failure_summary.faults_injected(), 0u)
      << "scenario did not exercise the resilience kinds";
  const Trace back = trace_from_text(trace_to_text(result.trace));
  EXPECT_TRUE(traces_equal(result.trace, back));
}

TEST(TraceIo, TextRoundTripIsExact) {
  const Trace original = sample_trace();
  const Trace back = trace_from_text(trace_to_text(original));
  EXPECT_TRUE(traces_equal(original, back));
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const Trace back = trace_from_text(trace_to_text(Trace{}));
  EXPECT_TRUE(back.empty());
}

TEST(TraceIo, RealExecutionRoundTripsBitExactly) {
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  auto cfg = wl::paper_config("C1.5");
  cfg.spec.n_steps = 4;
  const Trace original = exec.run(cfg.spec).trace;
  const Trace back = trace_from_text(trace_to_text(original));
  EXPECT_TRUE(traces_equal(original, back));
}

TEST(TraceIo, RejectsMissingHeader) {
  EXPECT_THROW((void)trace_from_text("WFET 2\nend 0\n"), SerializationError);
  EXPECT_THROW((void)trace_from_text(""), SerializationError);
}

TEST(TraceIo, RejectsMissingTrailer) {
  std::string text = trace_to_text(sample_trace());
  text.resize(text.rfind("end"));
  EXPECT_THROW((void)trace_from_text(text), SerializationError);
}

TEST(TraceIo, RejectsCountMismatch) {
  std::string text = "WFET 1\nend 3\n";
  EXPECT_THROW((void)trace_from_text(text), SerializationError);
}

TEST(TraceIo, RejectsUnknownMnemonic) {
  const std::string text =
      "WFET 1\nrecord 0 -1 0 Z 0 1 0 0 0 0\nend 1\n";
  EXPECT_THROW((void)trace_from_text(text), SerializationError);
}

TEST(TraceIo, RejectsMalformedRecord) {
  const std::string text = "WFET 1\nrecord 0 -1 0 S 0\nend 1\n";
  EXPECT_THROW((void)trace_from_text(text), SerializationError);
}

TEST(TraceIo, RejectsNegativeDuration) {
  const std::string text =
      "WFET 1\nrecord 0 -1 0 S 2 1 0 0 0 0\nend 1\n";
  EXPECT_THROW((void)trace_from_text(text), SerializationError);
}

TEST(TraceIo, RejectsUnknownTag) {
  const std::string text = "WFET 1\nbogus line\nend 0\n";
  EXPECT_THROW((void)trace_from_text(text), SerializationError);
}

TEST(TraceIo, CsvHasHeaderAndOneLinePerRecord) {
  const std::string csv = trace_to_csv(sample_trace());
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1u + sample_trace().size());
  EXPECT_EQ(csv.find("member,analysis,step,stage"), 0u);
}

TEST(TraceIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "wfens-trace-io-test.wfet";
  const Trace original = sample_trace();
  save_trace(path, original);
  const Trace back = load_trace(path);
  EXPECT_TRUE(traces_equal(original, back));
  std::filesystem::remove(path);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/dir/trace.wfet"), Error);
}

}  // namespace
}  // namespace wfe::met
