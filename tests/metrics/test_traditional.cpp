// Table 1 metric definitions.
#include "metrics/traditional.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace wfe::met {
namespace {

using core::StageKind;

Trace two_member_trace() {
  // Member 0: sim starts at 1.0, its analysis ends at 11.0 -> makespan 10.
  // Member 1: sim starts at 0.0, its analysis ends at 14.0 -> makespan 14.
  std::vector<StageRecord> records{
      {{0, -1}, 0, StageKind::kSimulate, 1.0, 4.0,
       plat::HwCounters{1000, 500, 40, 4}},
      {{0, -1}, 0, StageKind::kWrite, 4.0, 4.5, {}},
      {{0, 0}, 0, StageKind::kRead, 4.5, 5.0, {}},
      {{0, 0}, 0, StageKind::kAnalyze, 5.0, 11.0,
       plat::HwCounters{2000, 4000, 400, 80}},
      {{1, -1}, 0, StageKind::kSimulate, 0.0, 6.0,
       plat::HwCounters{3000, 1500, 120, 6}},
      {{1, 0}, 0, StageKind::kAnalyze, 6.0, 14.0,
       plat::HwCounters{1000, 2500, 150, 45}},
  };
  return Trace(std::move(records));
}

TEST(Traditional, ComponentExecutionTimeSpansAllStages) {
  const Trace t = two_member_trace();
  const ComponentMetrics m = component_metrics(t, {0, -1});
  EXPECT_DOUBLE_EQ(m.execution_time, 3.5);  // 1.0 .. 4.5
}

TEST(Traditional, ComponentRatiosMatchTable1Definitions) {
  const Trace t = two_member_trace();
  const ComponentMetrics sim = component_metrics(t, {0, -1});
  EXPECT_DOUBLE_EQ(sim.llc_miss_ratio, 4.0 / 40.0);
  EXPECT_DOUBLE_EQ(sim.memory_intensity, 4.0 / 1000.0);
  EXPECT_DOUBLE_EQ(sim.ipc, 1000.0 / 500.0);

  const ComponentMetrics ana = component_metrics(t, {0, 0});
  EXPECT_DOUBLE_EQ(ana.llc_miss_ratio, 80.0 / 400.0);
  EXPECT_DOUBLE_EQ(ana.memory_intensity, 80.0 / 2000.0);
  EXPECT_DOUBLE_EQ(ana.ipc, 0.5);
}

TEST(Traditional, AnalysesAreMoreMemoryIntensive) {
  // The paper's §2.3 premise, encoded in the synthetic counters.
  const Trace t = two_member_trace();
  EXPECT_GT(component_metrics(t, {0, 0}).memory_intensity,
            component_metrics(t, {0, -1}).memory_intensity);
}

TEST(Traditional, AllComponentMetricsEnumeratesEverything) {
  const auto all = all_component_metrics(two_member_trace());
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].component, (ComponentId{0, -1}));
  EXPECT_EQ(all[3].component, (ComponentId{1, 0}));
}

TEST(Traditional, MemberMakespanIsSimStartToLatestAnalysisEnd) {
  const Trace t = two_member_trace();
  EXPECT_DOUBLE_EQ(member_makespan(t, 0), 10.0);
  EXPECT_DOUBLE_EQ(member_makespan(t, 1), 14.0);
}

TEST(Traditional, MemberMakespanUsesLatestAnalysisAmongSeveral) {
  std::vector<StageRecord> records{
      {{0, -1}, 0, StageKind::kSimulate, 2.0, 3.0, {}},
      {{0, 0}, 0, StageKind::kAnalyze, 3.0, 5.0, {}},
      {{0, 1}, 0, StageKind::kAnalyze, 3.0, 9.0, {}},
  };
  EXPECT_DOUBLE_EQ(member_makespan(Trace(records), 0), 7.0);
}

TEST(Traditional, EnsembleMakespanIsMaxOverMembers) {
  EXPECT_DOUBLE_EQ(ensemble_makespan(two_member_trace()), 14.0);
}

TEST(Traditional, MemberWithoutAnalysisThrows) {
  std::vector<StageRecord> records{
      {{0, -1}, 0, StageKind::kSimulate, 0.0, 1.0, {}},
  };
  EXPECT_THROW((void)member_makespan(Trace(records), 0), InvalidArgument);
}

TEST(Traditional, EmptyTraceThrows) {
  EXPECT_THROW((void)ensemble_makespan(Trace{}), InvalidArgument);
}

}  // namespace
}  // namespace wfe::met
