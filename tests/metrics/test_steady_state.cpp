// Steady-state extraction tests: warm-up trimming and robust estimation.
#include "metrics/steady_state.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace wfe::met {
namespace {

using core::StageKind;

/// A component whose stage of `kind` lasts warmup_value for the first
/// `warmup` steps and steady_value afterwards.
Trace synthetic_trace(ComponentId id, StageKind kind, int steps,
                      int warmup_steps, double warmup_value,
                      double steady_value) {
  std::vector<StageRecord> records;
  double t = 0.0;
  for (int s = 0; s < steps; ++s) {
    const double d = s < warmup_steps ? warmup_value : steady_value;
    records.push_back({id, static_cast<std::uint64_t>(s), kind, t, t + d, {}});
    t += d;
  }
  return Trace(std::move(records));
}

TEST(SteadyState, MedianIgnoresWarmup) {
  const Trace t =
      synthetic_trace({0, -1}, StageKind::kSimulate, 20, 3, 50.0, 10.0);
  SteadyStateOptions opt;
  opt.warmup_fraction = 0.2;
  EXPECT_DOUBLE_EQ(steady_stage_duration(t, {0, -1}, StageKind::kSimulate, opt),
                   10.0);
}

TEST(SteadyState, MeanOptionAverages) {
  // After trimming 1 step of warm-up, values are 2, 4 -> mean 3.
  Trace t = synthetic_trace({0, -1}, StageKind::kWrite, 3, 1, 9.0, 0.0);
  std::vector<StageRecord> records(t.records().begin(), t.records().end());
  records[1].end = records[1].start + 2.0;
  records[2].end = records[2].start + 4.0;
  const Trace t2(std::move(records));
  SteadyStateOptions opt;
  opt.use_mean = true;
  opt.warmup_fraction = 0.0;
  opt.min_warmup_steps = 1;
  EXPECT_DOUBLE_EQ(
      steady_stage_duration(t2, {0, -1}, StageKind::kWrite, opt), 3.0);
}

TEST(SteadyState, SingleStepKeepsItsValue) {
  const Trace t =
      synthetic_trace({0, -1}, StageKind::kSimulate, 1, 0, 0.0, 7.0);
  EXPECT_DOUBLE_EQ(
      steady_stage_duration(t, {0, -1}, StageKind::kSimulate, {}), 7.0);
}

TEST(SteadyState, MissingStageThrows) {
  const Trace t =
      synthetic_trace({0, -1}, StageKind::kSimulate, 5, 0, 1.0, 1.0);
  EXPECT_THROW(
      (void)steady_stage_duration(t, {0, -1}, StageKind::kAnalyze, {}),
      InvalidArgument);
}

TEST(SteadyState, RejectsBadWarmupFraction) {
  const Trace t =
      synthetic_trace({0, -1}, StageKind::kSimulate, 5, 0, 1.0, 1.0);
  SteadyStateOptions opt;
  opt.warmup_fraction = 1.0;
  EXPECT_THROW(
      (void)steady_stage_duration(t, {0, -1}, StageKind::kSimulate, opt),
      InvalidArgument);
}

TEST(SteadyState, SplitStagesWithinAStepAreSummed) {
  // Two W records for the same step count as one step duration.
  std::vector<StageRecord> records{
      {{0, -1}, 0, StageKind::kWrite, 0.0, 1.0, {}},
      {{0, -1}, 0, StageKind::kWrite, 1.0, 1.5, {}},
      {{0, -1}, 1, StageKind::kWrite, 2.0, 3.5, {}},
  };
  const Trace t(std::move(records));
  SteadyStateOptions opt;
  opt.min_warmup_steps = 1;
  // Warm-up drops step 0; steady W = 1.5.
  EXPECT_DOUBLE_EQ(steady_stage_duration(t, {0, -1}, StageKind::kWrite, opt),
                   1.5);
}

Trace member_trace(double s, double w, std::vector<std::pair<double, double>>
                                           analyses /* (r, a) */) {
  std::vector<StageRecord> records;
  for (int step = 0; step < 6; ++step) {
    const double base = step * 100.0;
    records.push_back({{0, -1}, static_cast<std::uint64_t>(step),
                       StageKind::kSimulate, base, base + s, {}});
    records.push_back({{0, -1}, static_cast<std::uint64_t>(step),
                       StageKind::kWrite, base + s, base + s + w, {}});
    for (std::size_t j = 0; j < analyses.size(); ++j) {
      const auto [r, a] = analyses[j];
      records.push_back({{0, static_cast<std::int32_t>(j)},
                         static_cast<std::uint64_t>(step), StageKind::kRead,
                         base + s + w, base + s + w + r, {}});
      records.push_back({{0, static_cast<std::int32_t>(j)},
                         static_cast<std::uint64_t>(step),
                         StageKind::kAnalyze, base + s + w + r,
                         base + s + w + r + a, {}});
    }
  }
  return Trace(std::move(records));
}

TEST(MemberSteadyState, AssemblesAllStages) {
  const Trace t = member_trace(10.0, 0.5, {{1.0, 7.0}, {2.0, 8.0}});
  const core::MemberSteady steady = member_steady_state(t, 0);
  EXPECT_DOUBLE_EQ(steady.sim.s, 10.0);
  EXPECT_DOUBLE_EQ(steady.sim.w, 0.5);
  ASSERT_EQ(steady.analyses.size(), 2u);
  EXPECT_DOUBLE_EQ(steady.analyses[0].r, 1.0);
  EXPECT_DOUBLE_EQ(steady.analyses[0].a, 7.0);
  EXPECT_DOUBLE_EQ(steady.analyses[1].r, 2.0);
  EXPECT_DOUBLE_EQ(steady.analyses[1].a, 8.0);
}

TEST(MemberSteadyState, AnalysesOrderedByIndex) {
  // Build the trace with analysis 1 recorded before analysis 0.
  std::vector<StageRecord> records;
  for (int step = 0; step < 4; ++step) {
    const double base = step * 10.0;
    records.push_back({{0, -1}, static_cast<std::uint64_t>(step),
                       StageKind::kSimulate, base, base + 1, {}});
    records.push_back({{0, -1}, static_cast<std::uint64_t>(step),
                       StageKind::kWrite, base + 1, base + 1.1, {}});
    records.push_back({{0, 1}, static_cast<std::uint64_t>(step),
                       StageKind::kRead, base, base + 0.2, {}});
    records.push_back({{0, 1}, static_cast<std::uint64_t>(step),
                       StageKind::kAnalyze, base, base + 5, {}});
    records.push_back({{0, 0}, static_cast<std::uint64_t>(step),
                       StageKind::kRead, base, base + 0.1, {}});
    records.push_back({{0, 0}, static_cast<std::uint64_t>(step),
                       StageKind::kAnalyze, base, base + 3, {}});
  }
  const core::MemberSteady steady = member_steady_state(Trace(records), 0);
  EXPECT_DOUBLE_EQ(steady.analyses[0].a, 3.0);
  EXPECT_DOUBLE_EQ(steady.analyses[1].a, 5.0);
}

TEST(MemberSteadyState, MissingMemberThrows) {
  const Trace t = member_trace(1.0, 0.1, {{0.1, 0.5}});
  EXPECT_THROW((void)member_steady_state(t, 7), InvalidArgument);
}

TEST(MemberSteadyState, MemberWithoutAnalysesThrows) {
  const Trace t =
      synthetic_trace({0, -1}, StageKind::kSimulate, 5, 0, 1.0, 1.0);
  EXPECT_THROW((void)member_steady_state(t, 0), InvalidArgument);
}

}  // namespace
}  // namespace wfe::met
