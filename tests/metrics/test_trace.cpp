// Trace container and recorder tests.
#include "metrics/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "support/error.hpp"

namespace wfe::met {
namespace {

using core::StageKind;

StageRecord rec(ComponentId id, std::uint64_t step, StageKind kind,
                double start, double end,
                plat::HwCounters counters = {}) {
  return StageRecord{id, step, kind, start, end, counters};
}

TEST(ComponentId, SimulationVsAnalysis) {
  EXPECT_TRUE((ComponentId{0, -1}).is_simulation());
  EXPECT_FALSE((ComponentId{0, 0}).is_simulation());
  EXPECT_EQ((ComponentId{2, -1}).str(), "sim2");
  EXPECT_EQ((ComponentId{2, 1}).str(), "ana2.1");
}

TEST(ComponentId, Ordering) {
  EXPECT_LT((ComponentId{0, -1}), (ComponentId{0, 0}));
  EXPECT_LT((ComponentId{0, 1}), (ComponentId{1, -1}));
}

TEST(TraceRecorder, RejectsNegativeDuration) {
  TraceRecorder r;
  EXPECT_THROW(
      r.record(rec({0, -1}, 0, StageKind::kSimulate, 2.0, 1.0)),
      InvalidArgument);
}

TEST(TraceRecorder, TakeLeavesRecorderEmpty) {
  TraceRecorder r;
  r.record(rec({0, -1}, 0, StageKind::kSimulate, 0.0, 1.0));
  EXPECT_EQ(r.take().size(), 1u);
  EXPECT_TRUE(r.take().empty());
}

TEST(TraceRecorder, ConcurrentRecordingIsSafe) {
  TraceRecorder r;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&r, t] {
      for (int i = 0; i < 100; ++i) {
        r.record(rec({static_cast<std::uint32_t>(t), -1},
                     static_cast<std::uint64_t>(i), StageKind::kSimulate,
                     i, i + 0.5));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.take().size(), 400u);
}

TEST(Trace, SortsByStartTime) {
  Trace t({rec({0, -1}, 1, StageKind::kSimulate, 5.0, 6.0),
           rec({0, -1}, 0, StageKind::kSimulate, 1.0, 2.0)});
  EXPECT_EQ(t.records()[0].step, 0u);
  EXPECT_EQ(t.records()[1].step, 1u);
}

TEST(Trace, ComponentsAreSortedUnique) {
  Trace t({rec({1, 0}, 0, StageKind::kRead, 0, 1),
           rec({0, -1}, 0, StageKind::kSimulate, 0, 1),
           rec({1, 0}, 1, StageKind::kRead, 1, 2)});
  const auto ids = t.components();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], (ComponentId{0, -1}));
  EXPECT_EQ(ids[1], (ComponentId{1, 0}));
  EXPECT_EQ(t.members(), (std::vector<std::uint32_t>{0, 1}));
}

TEST(Trace, ForComponentFilters) {
  Trace t({rec({0, -1}, 0, StageKind::kSimulate, 0, 1),
           rec({0, 0}, 0, StageKind::kRead, 1, 2),
           rec({0, -1}, 1, StageKind::kSimulate, 2, 3)});
  EXPECT_EQ(t.for_component({0, -1}).size(), 2u);
  EXPECT_EQ(t.for_component({0, 0}).size(), 1u);
  EXPECT_TRUE(t.for_component({9, -1}).empty());
}

TEST(Trace, ComponentStartEnd) {
  Trace t({rec({0, -1}, 0, StageKind::kSimulate, 1.5, 2.0),
           rec({0, -1}, 1, StageKind::kSimulate, 3.0, 7.25)});
  EXPECT_DOUBLE_EQ(t.component_start({0, -1}), 1.5);
  EXPECT_DOUBLE_EQ(t.component_end({0, -1}), 7.25);
  EXPECT_THROW((void)t.component_start({5, -1}), InvalidArgument);
}

TEST(Trace, StepCountIsDistinctSteps) {
  Trace t({rec({0, -1}, 0, StageKind::kSimulate, 0, 1),
           rec({0, -1}, 0, StageKind::kWrite, 1, 2),
           rec({0, -1}, 1, StageKind::kSimulate, 2, 3)});
  EXPECT_EQ(t.step_count({0, -1}), 2u);
}

TEST(Trace, CountersAggregatePerComponent) {
  plat::HwCounters c1{100, 200, 10, 1};
  plat::HwCounters c2{50, 100, 5, 2};
  Trace t({rec({0, -1}, 0, StageKind::kSimulate, 0, 1, c1),
           rec({0, -1}, 1, StageKind::kSimulate, 1, 2, c2),
           rec({0, 0}, 0, StageKind::kAnalyze, 0, 1, c1)});
  const auto total = t.component_counters({0, -1});
  EXPECT_DOUBLE_EQ(total.instructions, 150.0);
  EXPECT_DOUBLE_EQ(total.llc_misses, 3.0);
}

TEST(Trace, TotalInStageSumsDurations) {
  Trace t({rec({0, -1}, 0, StageKind::kSimulate, 0, 1),
           rec({0, -1}, 0, StageKind::kWrite, 1, 1.5),
           rec({0, -1}, 1, StageKind::kSimulate, 1.5, 3.5)});
  EXPECT_DOUBLE_EQ(t.total_in_stage({0, -1}, StageKind::kSimulate), 3.0);
  EXPECT_DOUBLE_EQ(t.total_in_stage({0, -1}, StageKind::kWrite), 0.5);
  EXPECT_DOUBLE_EQ(t.total_in_stage({0, -1}, StageKind::kRead), 0.0);
}

TEST(Trace, EmptyTraceBehaviour) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.components().empty());
  EXPECT_TRUE(t.members().empty());
}

}  // namespace
}  // namespace wfe::met
