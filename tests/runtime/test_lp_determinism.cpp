// Determinism of the LP-partitioned replay under real concurrency: the
// same replay repeated on a multi-worker crew must produce byte-identical
// outputs every time, and the crew size must never leak into the result.
//
// These tests carry the `concurrency` ctest label (via test_runtime's
// CONCURRENCY flag), so tools/check_sanitize.sh runs them under
// ThreadSanitizer: a data race between LP lanes shows up either as a TSan
// report or as a hash mismatch here. The LP barrier reuses the
// exec::ThreadPool batch barrier (lock rank kRankExecPool — see the rank
// table in docs/ANALYSIS.md), so lock-order violations surface here too.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "metrics/trace_io.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/simulated_executor.hpp"
#include "sched/scheduler.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

/// FNV-1a over the run's observable bytes: stage trace, span/counter run
/// log, and the counter snapshot rendering. One number per run makes the
/// 50x repetition cheap to compare and the failure report small.
std::uint64_t fingerprint(const std::string& trace_text,
                          const std::string& runlog,
                          const obs::CounterSnapshot& counters) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::string& bytes) {
    for (const char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
  };
  mix(trace_text);
  mix(runlog);
  mix(obs::snapshot_to_text(counters));
  return h;
}

std::uint64_t run_fingerprint(const rt::EnsembleSpec& spec,
                              const std::string& engine) {
  rt::SimulatedOptions options;
  options.engine = rt::EngineSelection::parse(engine);
  obs::Recorder recorder;
  std::uint64_t h = 0;
  {
    obs::Session session(recorder);
    const rt::SimulatedExecutor exec(wl::cori_like_platform(), options);
    const rt::ExecutionResult result = exec.run(spec);
    h = fingerprint(met::trace_to_text(result.trace), "", result.counters);
  }
  // Fold the full run log in after the session closed.
  const std::string runlog = obs::runlog_to_jsonl(recorder.take());
  return h ^ fingerprint(runlog, "", {});
}

TEST(LpDeterminism, FiftyRepeatsOnAnEightWorkerCrewAreByteStable) {
  const rt::EnsembleSpec spec = wl::paper_config("Cf").spec;
  const std::uint64_t expected = run_fingerprint(spec, "lp:8");
  // And the crew must not drift from the sequential engine either.
  ASSERT_EQ(run_fingerprint(spec, "seq"), expected);
  for (int rep = 0; rep < 50; ++rep) {
    ASSERT_EQ(run_fingerprint(spec, "lp:8"), expected) << "repeat " << rep;
  }
}

TEST(LpDeterminism, CrewSizeNeverChangesTheResult) {
  const rt::EnsembleSpec spec = wl::paper_config("Cc").spec;
  const std::uint64_t expected = run_fingerprint(spec, "seq");
  for (const char* engine : {"lp:1", "lp:2", "lp:4", "lp:8", "lp:16"}) {
    EXPECT_EQ(run_fingerprint(spec, engine), expected) << engine;
  }
}

/// Compare two placed ensembles component-by-component (EnsembleSpec has
/// no operator==; placement identity is what the planner promises).
void expect_same_placement(const rt::EnsembleSpec& a,
                           const rt::EnsembleSpec& b) {
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t m = 0; m < a.members.size(); ++m) {
    EXPECT_EQ(a.members[m].sim.nodes, b.members[m].sim.nodes) << "m" << m;
    ASSERT_EQ(a.members[m].analyses.size(), b.members[m].analyses.size());
    for (std::size_t k = 0; k < a.members[m].analyses.size(); ++k) {
      EXPECT_EQ(a.members[m].analyses[k].nodes,
                b.members[m].analyses[k].nodes)
          << "m" << m << ".a" << k;
    }
  }
}

TEST(LpDeterminism, SchedulerProbesPickTheSamePlanOnEitherEngine) {
  // PlanOptions::engine routes every probe replay through the selected
  // engine; the chosen placement, objective ordering, and evaluation count
  // must be engine-invariant (that is why the engine is excluded from the
  // EvalCache scenario fingerprint).
  const auto shape = sched::EnsembleShape::paper_like(2, 2, 6);
  const auto platform = wl::cori_like_platform(4);
  const sched::ResourceBudget budget{4};
  const auto scheduler = sched::make_scheduler("greedy-colocate");

  sched::PlanOptions seq_options;
  seq_options.engine = rt::EngineSelection::parse("seq");
  const sched::Schedule a =
      scheduler->plan(shape, platform, budget, seq_options);

  sched::PlanOptions lp_options;
  lp_options.engine = rt::EngineSelection::parse("lp:4");
  const sched::Schedule b =
      scheduler->plan(shape, platform, budget, lp_options);

  expect_same_placement(a.spec, b.spec);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

}  // namespace
}  // namespace wfe
