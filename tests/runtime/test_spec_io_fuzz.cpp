// Round-trip fuzzing for WFES spec persistence.
//
// Seeded random EnsembleSpecs must serialize -> parse -> re-serialize
// byte-identically, and random mutations of well-formed WFES text must
// either parse or throw a wfe:: error — never crash (exercised under
// ASan/UBSan by tools/sanitize.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "runtime/spec_io.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

std::string random_name(Xoshiro256& rng) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ._-";
  const std::size_t len = 1 + rng() % 16;
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng() % (sizeof(kAlphabet) - 1)]);
  }
  // WFES is line-oriented: names are free text minus newlines, and the
  // format trims exterior whitespace — keep the generator inside that.
  while (!s.empty() && s.front() == ' ') s.front() = 'x';
  while (!s.empty() && s.back() == ' ') s.back() = 'x';
  return s;
}

std::set<int> random_nodes(Xoshiro256& rng) {
  std::set<int> nodes;
  const std::size_t n = 1 + rng() % 3;
  while (nodes.size() < n) nodes.insert(static_cast<int>(rng() % 12));
  return nodes;
}

EnsembleSpec random_spec(std::uint64_t seed) {
  static const char* kKernels[] = {"msd", "rgyr", "rdf", "voronoi"};
  Xoshiro256 rng(seed);
  EnsembleSpec spec;
  spec.name = random_name(rng);
  spec.n_steps = 1 + rng() % 100;
  const std::size_t members = 1 + rng() % 4;
  for (std::size_t m = 0; m < members; ++m) {
    MemberSpec member;
    member.buffer_capacity = 1 + static_cast<int>(rng() % 4);
    member.sim.cores = 1 + static_cast<int>(rng() % 32);
    member.sim.stride = 1 + rng() % 10;
    member.sim.natoms = 100 + rng() % 100000;
    member.sim.nodes = random_nodes(rng);
    const std::size_t analyses = 1 + rng() % 3;
    for (std::size_t a = 0; a < analyses; ++a) {
      AnalysisSpec analysis;
      analysis.kernel = kKernels[rng() % 4];
      analysis.cores = 1 + static_cast<int>(rng() % 16);
      analysis.nodes = random_nodes(rng);
      member.analyses.push_back(analysis);
    }
    spec.members.push_back(member);
  }
  return spec;
}

TEST(SpecIoFuzz, RandomSpecsRoundTripByteIdentically) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const EnsembleSpec spec = random_spec(seed);
    const std::string text = spec_to_text(spec);
    EnsembleSpec parsed;
    try {
      parsed = spec_from_text(text);
    } catch (const Error& e) {
      FAIL() << "seed " << seed << ": emitted WFES rejected: " << e.what()
             << "\n" << text;
    }
    EXPECT_EQ(spec_to_text(parsed), text) << "seed " << seed;
  }
}

std::string mutate(const std::string& text, Xoshiro256& rng) {
  std::string out = text;
  if (out.empty()) return "W";
  const std::size_t pos = rng() % out.size();
  switch (rng() % 5) {
    case 0:
      out[pos] = static_cast<char>(rng() % 128);
      break;
    case 1:
      out.erase(pos, 1 + rng() % 8);
      break;
    case 2:
      out.insert(pos, 1, static_cast<char>('0' + rng() % 10));
      break;
    case 3: {  // swap two lines' worth of bytes crudely
      const std::size_t pos2 = rng() % out.size();
      std::swap(out[pos], out[pos2]);
      break;
    }
    default:
      out.resize(pos);
      break;
  }
  return out;
}

TEST(SpecIoFuzz, MutatedSpecsNeverCrashTheParser) {
  const std::string base = spec_to_text(wl::paper_config("C2.4").spec);
  Xoshiro256 rng(0x5bec);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    std::string text = base;
    const int rounds = 1 + static_cast<int>(rng() % 4);
    for (int r = 0; r < rounds; ++r) text = mutate(text, rng);
    try {
      const EnsembleSpec parsed = spec_from_text(text);
      // Accepted mutants must re-serialize without crashing either.
      (void)spec_to_text(parsed);
      ++accepted;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted + rejected, 500);
  EXPECT_GT(rejected, 0);  // tame mutations would prove nothing
}

TEST(SpecIoFuzz, RandomGarbageNeverCrashesTheParser) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 300; ++i) {
    std::string text;
    const std::size_t len = rng() % 200;
    for (std::size_t j = 0; j < len; ++j) {
      text.push_back(static_cast<char>(rng() % 256));
    }
    try {
      (void)spec_from_text(text);
    } catch (const Error&) {
      // the only acceptable failure mode
    }
  }
}

TEST(SpecIoFuzz, HostileNumbersAreRejectedNotTrusted) {
  // Oversized or negative fields must surface as wfe:: errors, not wrap
  // around into absurd-but-accepted specs that crash the executor later.
  const char* cases[] = {
      "WFES 1\nname n\nsteps 99999999999999999999\nmember buffer 1\n"
      "sim cores 1 stride 1 natoms 10 nodes 0\n"
      "analysis kernel msd cores 1 nodes 0\nend 1\n",
      "WFES 1\nname n\nsteps 5\nmember buffer 1\n"
      "sim cores -5 stride 1 natoms 10 nodes 0\n"
      "analysis kernel msd cores 1 nodes 0\nend 1\n",
      "WFES 1\nname n\nsteps 5\nmember buffer 0\n"
      "sim cores 1 stride 1 natoms 10 nodes 0\n"
      "analysis kernel msd cores 1 nodes 0\nend 1\n",
  };
  for (const char* text : cases) {
    try {
      const EnsembleSpec spec = spec_from_text(text);
      // If the format layer is lenient, validation must still catch it.
      EXPECT_THROW(spec.validate(wl::cori_like_platform()),
                   Error)
          << text;
    } catch (const Error&) {
      // rejected at parse time: fine
    }
  }
}

}  // namespace
}  // namespace wfe::rt
