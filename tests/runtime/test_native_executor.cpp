// NativeExecutor: real threads, real MD, real kernels, real staging.
#include "runtime/native_executor.hpp"

#include <gtest/gtest.h>

#include <map>

#include "metrics/steady_state.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

using core::StageKind;

TEST(NativeExecutor, RunsSmallEnsembleToCompletion) {
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 3);
  const ExecutionResult result = NativeExecutor().run(spec);
  EXPECT_EQ(result.n_steps, 3u);
  EXPECT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.members().size(), 1u);
}

TEST(NativeExecutor, EveryStepTracedForEveryComponent) {
  const EnsembleSpec spec = wl::small_native_ensemble(2, 2, 3);
  const ExecutionResult result = NativeExecutor().run(spec);
  for (const auto& id : result.trace.components()) {
    EXPECT_EQ(result.trace.step_count(id), 3u) << id.str();
  }
  EXPECT_EQ(result.trace.components().size(), 6u);  // 2 sims + 4 analyses
}

TEST(NativeExecutor, AnalysisOutputsProduced) {
  const EnsembleSpec spec = wl::small_native_ensemble(1, 2, 4);
  const ExecutionResult result = NativeExecutor().run(spec);
  ASSERT_EQ(result.analysis_outputs.size(), 2u);
  for (const auto& series : result.analysis_outputs) {
    EXPECT_EQ(series.results.size(), 4u);
    for (const auto& r : series.results) {
      EXPECT_FALSE(r.values.empty());
    }
  }
}

TEST(NativeExecutor, CollectiveVariableEvolves) {
  // The bipartite eigenvalue must be positive and change over steps — the
  // MD system is actually moving.
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 4);
  const ExecutionResult result = NativeExecutor().run(spec);
  ASSERT_EQ(result.analysis_outputs.size(), 1u);
  const auto& series = result.analysis_outputs[0].results;
  ASSERT_EQ(series.size(), 4u);
  EXPECT_GT(series[0].values[0], 0.0);
  EXPECT_NE(series[0].values[0], series[3].values[0]);
}

TEST(NativeExecutor, StepsAreOrderedPerAnalysis) {
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 5);
  const ExecutionResult result = NativeExecutor().run(spec);
  const auto& series = result.analysis_outputs[0].results;
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i].step, i);
  }
}

TEST(NativeExecutor, MaxStepsCapsTheRun) {
  EnsembleSpec spec = wl::small_native_ensemble(1, 1, 10);
  NativeOptions opt;
  opt.max_steps = 2;
  const ExecutionResult result = NativeExecutor(opt).run(spec);
  EXPECT_EQ(result.n_steps, 2u);
  EXPECT_EQ(result.trace.step_count({0, -1}), 2u);
}

TEST(NativeExecutor, TraceTimesAreMonotoneWithinComponents) {
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 4);
  const ExecutionResult result = NativeExecutor().run(spec);
  for (const auto& id : result.trace.components()) {
    double last_end = 0.0;
    for (const auto& r : result.trace.for_component(id)) {
      EXPECT_GE(r.start, last_end - 1e-9);
      last_end = r.end;
    }
  }
}

TEST(NativeExecutor, ProtocolOrderVisibleInRealTimings) {
  // W_i must complete before R_i starts for the same member.
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 4);
  const ExecutionResult result = NativeExecutor().run(spec);
  std::map<std::uint64_t, double> w_end, r_start;
  for (const auto& r : result.trace.records()) {
    if (r.kind == StageKind::kWrite) w_end[r.step] = r.end;
    if (r.kind == StageKind::kRead) r_start[r.step] = r.start;
  }
  for (const auto& [step, end] : w_end) {
    ASSERT_TRUE(r_start.contains(step));
    EXPECT_GE(r_start[step], end - 1e-6);
  }
}

TEST(NativeExecutor, AssessmentPipelineRunsOnRealTraces) {
  // The whole paper pipeline (steady state -> E -> indicators -> F) works
  // unchanged on a real execution.
  const EnsembleSpec spec = wl::small_native_ensemble(2, 1, 4);
  const ExecutionResult result = NativeExecutor().run(spec);
  const Assessment a = assess(spec, result);
  ASSERT_EQ(a.members.size(), 2u);
  for (const auto& m : a.members) {
    EXPECT_GT(m.sigma, 0.0);
    EXPECT_GT(m.efficiency, 0.0);
    EXPECT_LE(m.efficiency, 1.0 + 1e-9);
    EXPECT_GT(m.makespan_measured, 0.0);
  }
  EXPECT_GT(a.objective(core::IndicatorKind::kUAP), 0.0);
}

TEST(NativeExecutor, MixedKernelsRun) {
  EnsembleSpec spec = wl::small_native_ensemble(1, 1, 3);
  spec.members[0].analyses[0].kernel = "rmsd";
  spec.members[0].analyses.push_back(spec.members[0].analyses[0]);
  spec.members[0].analyses[1].kernel = "contacts";
  const ExecutionResult result = NativeExecutor().run(spec);
  ASSERT_EQ(result.analysis_outputs.size(), 2u);
  EXPECT_EQ(result.analysis_outputs[0].results[0].kernel, "rmsd");
  EXPECT_EQ(result.analysis_outputs[1].results[0].kernel, "contacts");
}

TEST(NativeExecutor, GenerousCouplingTimeoutStillCompletes) {
  NativeOptions options;
  options.coupling_timeout_s = 60.0;  // far above any real wait here
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 3);
  const ExecutionResult result = NativeExecutor(options).run(spec);
  for (const auto& id : result.trace.components()) {
    EXPECT_EQ(result.trace.step_count(id), 3u) << id.str();
  }
}

TEST(NativeExecutor, HungPeerSurfacesAsTimeoutError) {
  // A nanosecond budget cannot cover the first real MD step, so the
  // analysis times out awaiting step 0; the exception must propagate out
  // of run() (captured thread exception) instead of killing the process.
  NativeOptions options;
  options.coupling_timeout_s = 1e-9;
  const EnsembleSpec spec = wl::small_native_ensemble(1, 1, 3);
  EXPECT_THROW((void)NativeExecutor(options).run(spec), TimeoutError);
}

}  // namespace
}  // namespace wfe::rt
