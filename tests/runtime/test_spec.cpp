// EnsembleSpec validation and placement mapping.
#include "runtime/spec.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

EnsembleSpec two_member_spec() {
  EnsembleSpec spec;
  spec.n_steps = 5;
  for (int i = 0; i < 2; ++i) {
    MemberSpec m;
    m.sim.nodes = {i};
    m.sim.cores = 16;
    m.analyses.push_back(AnalysisSpec{{i}, 8, "bipartite-eigen", {}});
    spec.members.push_back(std::move(m));
  }
  return spec;
}

plat::PlatformSpec platform() { return wl::cori_like_platform(4); }

TEST(EnsembleSpec, ValidSpecPasses) {
  EXPECT_NO_THROW(two_member_spec().validate(platform()));
}

TEST(EnsembleSpec, RejectsNoMembers) {
  EnsembleSpec spec;
  spec.n_steps = 1;
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsZeroSteps) {
  EnsembleSpec spec = two_member_spec();
  spec.n_steps = 0;
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsMemberWithoutAnalyses) {
  EnsembleSpec spec = two_member_spec();
  spec.members[0].analyses.clear();
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsNodeOutsidePlatform) {
  EnsembleSpec spec = two_member_spec();
  spec.members[0].sim.nodes = {99};
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsEmptyNodeSet) {
  EnsembleSpec spec = two_member_spec();
  spec.members[0].analyses[0].nodes.clear();
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsNonPositiveCores) {
  EnsembleSpec spec = two_member_spec();
  spec.members[0].sim.cores = 0;
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsNonPositiveStride) {
  EnsembleSpec spec = two_member_spec();
  spec.members[0].sim.stride = 0;
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, RejectsOversubscribedNode) {
  // 16 + 8 + 8 = 32 fits a 32-core node; adding one more 8-core analysis
  // does not.
  EnsembleSpec spec;
  spec.n_steps = 1;
  MemberSpec m;
  m.sim.nodes = {0};
  m.sim.cores = 16;
  for (int j = 0; j < 2; ++j) {
    m.analyses.push_back(AnalysisSpec{{0}, 8, "rgyr", {}});
  }
  spec.members.push_back(m);
  EXPECT_NO_THROW(spec.validate(platform()));

  spec.members[0].analyses.push_back(AnalysisSpec{{0}, 8, "rgyr", {}});
  EXPECT_THROW(spec.validate(platform()), SpecError);
}

TEST(EnsembleSpec, MultiNodeComponentSpreadsDemand) {
  // A 32-core simulation across two nodes demands 16 per node.
  EnsembleSpec spec;
  spec.n_steps = 1;
  MemberSpec m;
  m.sim.nodes = {0, 1};
  m.sim.cores = 32;
  m.analyses.push_back(AnalysisSpec{{0}, 16, "rgyr", {}});
  spec.members.push_back(m);
  EXPECT_NO_THROW(spec.validate(platform()));
}

TEST(EnsembleSpec, TotalNodesIsUnion) {
  EXPECT_EQ(two_member_spec().total_nodes(), 2);

  EnsembleSpec spec = two_member_spec();
  spec.members[1].analyses[0].nodes = {3};
  EXPECT_EQ(spec.total_nodes(), 3);
}

TEST(EnsembleSpec, PlacementMapping) {
  const MemberSpec m = two_member_spec().members[1];
  const core::MemberPlacement p = m.placement();
  EXPECT_EQ(p.sim.nodes, (std::set<int>{1}));
  EXPECT_EQ(p.sim.cores, 16);
  ASSERT_EQ(p.analyses.size(), 1u);
  EXPECT_EQ(p.analyses[0].nodes, (std::set<int>{1}));
  EXPECT_EQ(p.analyses[0].cores, 8);
}

}  // namespace
}  // namespace wfe::rt
