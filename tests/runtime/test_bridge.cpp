// The trace -> model bridge (assess).
#include "runtime/bridge.hpp"

#include <gtest/gtest.h>

#include "core/efficiency.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

TEST(Assess, RejectsEmptyTrace) {
  const auto cfg = wl::paper_config("Cc");
  ExecutionResult empty;
  EXPECT_THROW((void)assess(cfg.spec, empty), InvalidArgument);
}

TEST(Assess, RejectsMemberCountMismatch) {
  const auto one = wl::paper_config("Cc");    // 1 member
  const auto two = wl::paper_config("C1.5");  // 2 members
  SimulatedExecutor exec(wl::cori_like_platform());
  const ExecutionResult result = exec.run(one.spec);
  EXPECT_THROW((void)assess(two.spec, result), InvalidArgument);
}

TEST(Assess, MemberFieldsAreConsistent) {
  const auto cfg = wl::paper_config("C1.5");
  SimulatedExecutor exec(wl::cori_like_platform());
  const ExecutionResult result = exec.run(cfg.spec);
  const Assessment a = assess(cfg.spec, result);

  ASSERT_EQ(a.members.size(), 2u);
  for (const auto& m : a.members) {
    EXPECT_DOUBLE_EQ(m.efficiency, core::computational_efficiency(m.steady));
    EXPECT_DOUBLE_EQ(m.sigma, core::non_overlapped_segment(m.steady));
    EXPECT_DOUBLE_EQ(m.makespan_model,
                     static_cast<double>(result.n_steps) * m.sigma);
  }
  EXPECT_EQ(a.total_nodes, 2);
  EXPECT_GE(a.ensemble_makespan_measured, a.members[0].makespan_measured);
}

TEST(Assess, IndicatorsComeFromTheModel) {
  const auto cfg = wl::paper_config("Cc");
  SimulatedExecutor exec(wl::cori_like_platform());
  const Assessment a = assess(cfg.spec, exec.run(cfg.spec));
  const auto p = a.member_indicators(core::IndicatorKind::kU);
  ASSERT_EQ(p.size(), 1u);
  // c = 24 cores, fully co-located.
  EXPECT_DOUBLE_EQ(p[0], a.members[0].efficiency / 24.0);
  EXPECT_DOUBLE_EQ(a.objective(core::IndicatorKind::kU), p[0]);
}

TEST(Assess, UsesGlobalNodeCountForM) {
  const auto cfg = wl::paper_config("C1.1");  // M = 3
  SimulatedExecutor exec(wl::cori_like_platform());
  const Assessment a = assess(cfg.spec, exec.run(cfg.spec));
  EXPECT_EQ(a.total_nodes, 3);
  const auto up = a.member_indicators(core::IndicatorKind::kUP);
  const auto u = a.member_indicators(core::IndicatorKind::kU);
  EXPECT_DOUBLE_EQ(up[0], u[0] / 3.0);
}

}  // namespace
}  // namespace wfe::rt
