// Fault injection and recovery in the simulated executor: the zero-fault
// bit-identity guarantee, reproducibility of faulty runs, and the three
// recovery policies end-to-end (ISSUE: crash mid-ensemble, retry and
// checkpoint complete every member, fail-member degrades gracefully with
// consistent wasted-work accounting).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "metrics/traditional.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

using core::StageKind;

EnsembleSpec small_spec(int members = 2, int analyses = 1,
                        std::uint64_t steps = 6) {
  EnsembleSpec spec;
  spec.n_steps = steps;
  for (int i = 0; i < members; ++i) {
    MemberSpec m;
    m.sim = wl::gltph_like_simulation({i});
    for (int j = 0; j < analyses; ++j) {
      m.analyses.push_back(wl::bipartite_like_analysis({i}));
    }
    spec.members.push_back(std::move(m));
  }
  return spec;
}

void expect_bit_identical(const met::Trace& a, const met::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const met::StageRecord& ra = a.records()[i];
    const met::StageRecord& rb = b.records()[i];
    EXPECT_EQ(ra.component, rb.component) << "record " << i;
    EXPECT_EQ(ra.step, rb.step) << "record " << i;
    EXPECT_EQ(ra.kind, rb.kind) << "record " << i;
    EXPECT_EQ(ra.start, rb.start) << "record " << i;  // exact, not NEAR
    EXPECT_EQ(ra.end, rb.end) << "record " << i;
    EXPECT_EQ(ra.counters.instructions, rb.counters.instructions);
    EXPECT_EQ(ra.counters.cycles, rb.counters.cycles);
    EXPECT_EQ(ra.counters.llc_references, rb.counters.llc_references);
    EXPECT_EQ(ra.counters.llc_misses, rb.counters.llc_misses);
  }
}

/// Recompute wasted core-seconds from the trace: every kFault record is a
/// killed partial stage billed at the component's full core allocation.
double wasted_from_trace(const EnsembleSpec& spec, const met::Trace& trace) {
  double wasted = 0.0;
  for (const met::StageRecord& r : trace.records()) {
    if (r.kind != StageKind::kFault) continue;
    const MemberSpec& m = spec.members[r.component.member];
    const int cores =
        r.component.is_simulation()
            ? m.sim.cores
            : m.analyses[static_cast<std::size_t>(r.component.analysis)].cores;
    wasted += r.duration() * static_cast<double>(cores);
  }
  return wasted;
}

res::FaultSpec crashes(double mtbf, double repair = 15.0,
                       std::uint64_t seed = 0xfa117u) {
  return wl::node_crashes(mtbf, repair, seed);
}

// -- the zero-fault guarantee ------------------------------------------------

TEST(Faults, DisabledSpecIsBitIdenticalToBaseline) {
  const EnsembleSpec spec = small_spec(2, 2, 5);
  const ExecutionResult base =
      SimulatedExecutor(wl::cori_like_platform()).run(spec);

  SimulatedOptions options;
  options.faults = wl::fault_free();
  options.recovery.kind = res::RecoveryKind::kCheckpointRestart;
  const ExecutionResult guarded =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);

  expect_bit_identical(base.trace, guarded.trace);
  EXPECT_EQ(guarded.failure_summary.faults_injected(), 0u);
  EXPECT_EQ(guarded.failure_summary.checkpoints_written, 0u);
  EXPECT_EQ(guarded.failure_summary.wasted_core_seconds, 0.0);
  EXPECT_TRUE(guarded.failure_summary.complete());
}

TEST(Faults, DisabledSpecIsBitIdenticalUnderJitter) {
  // The fault layer must not consume jitter RNG when disabled.
  const EnsembleSpec spec = small_spec(2, 1, 5);
  SimulatedOptions jittered;
  jittered.jitter_cv = 0.08;
  jittered.seed = 77;
  const ExecutionResult base =
      SimulatedExecutor(wl::cori_like_platform(), jittered).run(spec);

  SimulatedOptions guarded = jittered;
  guarded.faults = wl::fault_free();
  const ExecutionResult with_layer =
      SimulatedExecutor(wl::cori_like_platform(), guarded).run(spec);
  expect_bit_identical(base.trace, with_layer.trace);
}

// -- reproducibility ---------------------------------------------------------

TEST(Faults, FixedSeedIsReproducible) {
  const EnsembleSpec spec = small_spec(2, 1, 6);
  SimulatedOptions options;
  options.faults = crashes(150.0);
  options.recovery.max_retries = 10;

  const ExecutionResult a =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  const ExecutionResult b =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  expect_bit_identical(a.trace, b.trace);
  EXPECT_EQ(a.failure_summary.faults_injected(),
            b.failure_summary.faults_injected());
  EXPECT_EQ(a.failure_summary.stage_retries, b.failure_summary.stage_retries);
  EXPECT_EQ(a.failure_summary.wasted_core_seconds,
            b.failure_summary.wasted_core_seconds);
}

TEST(Faults, FaultSeedIsIndependentOfJitterSeed) {
  // Changing only the fault seed changes the fault timeline but not the
  // underlying stage-duration model (first kSimulate start stays 0).
  const EnsembleSpec spec = small_spec(1, 1, 6);
  SimulatedOptions a;
  a.faults = crashes(150.0, 15.0, 1);
  a.recovery.max_retries = 10;
  SimulatedOptions b = a;
  b.faults.seed = 2;
  const ExecutionResult ra =
      SimulatedExecutor(wl::cori_like_platform(), a).run(spec);
  const ExecutionResult rb =
      SimulatedExecutor(wl::cori_like_platform(), b).run(spec);
  // Different timelines (almost surely) — compare injected-fault counts or
  // effective spans rather than demanding full inequality of traces.
  const bool differs =
      ra.failure_summary.faults_injected() !=
          rb.failure_summary.faults_injected() ||
      ra.trace.size() != rb.trace.size() ||
      ra.failure_summary.wasted_core_seconds !=
          rb.failure_summary.wasted_core_seconds;
  EXPECT_TRUE(differs);
}

// -- recovery policies end-to-end --------------------------------------------

TEST(Faults, RetryRecoversNodeCrashesMidEnsemble) {
  const EnsembleSpec spec = small_spec(2, 1, 6);
  SimulatedOptions options;
  options.faults = crashes(120.0);  // well under the makespan: crashes hit
  options.recovery.kind = res::RecoveryKind::kRetry;
  options.recovery.max_retries = 20;
  options.recovery.backoff_base_s = 0.5;

  const ExecutionResult base =
      SimulatedExecutor(wl::cori_like_platform()).run(spec);
  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  const res::FailureSummary& fs = r.failure_summary;

  ASSERT_GT(fs.crash_stage_kills, 0u) << "MTBF too high to exercise crashes";
  EXPECT_GT(fs.stage_retries, 0u);
  EXPECT_TRUE(fs.complete());
  EXPECT_EQ(fs.members_recovered + 0u, fs.members_recovered);  // counted
  EXPECT_GT(fs.members_recovered, 0u);
  EXPECT_GT(fs.wasted_core_seconds, 0.0);

  // Every component still completed every in situ step.
  for (const auto& id : r.trace.components()) {
    EXPECT_EQ(r.trace.step_count(id), spec.n_steps) << id.str();
  }
  // Recovery costs time: the effective makespan exceeds the fault-free one.
  EXPECT_GT(met::ensemble_makespan(r.trace), met::ensemble_makespan(base.trace));
  // kFault records exist and the accounting matches them exactly.
  EXPECT_DOUBLE_EQ(fs.wasted_core_seconds, wasted_from_trace(spec, r.trace));
}

TEST(Faults, CheckpointRestartRecoversNodeCrashes) {
  const EnsembleSpec spec = small_spec(2, 1, 8);
  SimulatedOptions options;
  options.faults = crashes(150.0);
  options.recovery.kind = res::RecoveryKind::kCheckpointRestart;
  options.recovery.checkpoint_period = 2;
  options.recovery.max_restarts = 50;

  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  const res::FailureSummary& fs = r.failure_summary;

  ASSERT_GT(fs.crash_stage_kills, 0u);
  EXPECT_GT(fs.checkpoints_written, 0u);
  EXPECT_GT(fs.member_restarts, 0u);
  EXPECT_TRUE(fs.complete());
  for (const auto& id : r.trace.components()) {
    EXPECT_EQ(r.trace.step_count(id), spec.n_steps) << id.str();
  }

  // The recovery stages are first-class trace citizens.
  std::map<StageKind, int> kinds;
  for (const auto& rec : r.trace.records()) kinds[rec.kind]++;
  EXPECT_EQ(kinds[StageKind::kCheckpoint],
            static_cast<int>(fs.checkpoints_written));
  EXPECT_EQ(kinds[StageKind::kRestart], static_cast<int>(fs.member_restarts));
  // A rollback also kills the member's other in-flight stages (collateral
  // kFault records billed as waste), so the record count can exceed the
  // injected-fault count but never undershoot it.
  EXPECT_GE(kinds[StageKind::kFault], static_cast<int>(fs.faults_injected()));
  EXPECT_DOUBLE_EQ(fs.wasted_core_seconds, wasted_from_trace(spec, r.trace));
}

TEST(Faults, FailMemberDegradesGracefully) {
  const EnsembleSpec spec = small_spec(3, 1, 6);
  SimulatedOptions options;
  options.faults = crashes(120.0);
  options.recovery.kind = res::RecoveryKind::kFailMember;

  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  const res::FailureSummary& fs = r.failure_summary;

  ASSERT_GT(fs.faults_injected(), 0u);
  EXPECT_FALSE(fs.complete());
  EXPECT_EQ(fs.members_failed, fs.failed_members.size());
  EXPECT_EQ(fs.stage_retries, 0u);
  EXPECT_EQ(fs.member_restarts, 0u);
  EXPECT_LE(fs.members_failed + fs.members_recovered,
            static_cast<std::uint64_t>(spec.members.size()));

  // Members NOT on the failed list ran to completion; failed ones stopped
  // short on their simulation side.
  for (std::uint32_t m = 0; m < spec.members.size(); ++m) {
    const bool failed =
        std::find(fs.failed_members.begin(), fs.failed_members.end(), m) !=
        fs.failed_members.end();
    const met::ComponentId sim_id{m, -1};
    std::uint64_t sim_steps = 0;
    for (const auto& rec : r.trace.records()) {
      if (rec.component == sim_id && rec.kind == StageKind::kSimulate) {
        ++sim_steps;
      }
    }
    if (failed) {
      EXPECT_LT(sim_steps, spec.n_steps) << "member " << m;
    } else {
      EXPECT_EQ(sim_steps, spec.n_steps) << "member " << m;
    }
  }
  EXPECT_DOUBLE_EQ(fs.wasted_core_seconds, wasted_from_trace(spec, r.trace));
}

TEST(Faults, TransientErrorsAreRetriedToCompletion) {
  const EnsembleSpec spec = small_spec(2, 2, 6);
  SimulatedOptions options;
  options.faults = wl::transient_noise(0.15, 3);
  options.recovery.max_retries = 25;
  options.recovery.backoff_base_s = 0.1;

  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  const res::FailureSummary& fs = r.failure_summary;
  ASSERT_GT(fs.transient_stage_faults, 0u);
  EXPECT_EQ(fs.crash_stage_kills, 0u);
  EXPECT_TRUE(fs.complete());
  for (const auto& id : r.trace.components()) {
    EXPECT_EQ(r.trace.step_count(id), spec.n_steps) << id.str();
  }
}

TEST(Faults, ExhaustedRetriesFailTheMember) {
  const EnsembleSpec spec = small_spec(1, 1, 4);
  SimulatedOptions options;
  options.faults.stage_error_prob = 1.0;  // every compute attempt dies
  options.recovery.kind = res::RecoveryKind::kRetry;
  options.recovery.max_retries = 2;
  options.recovery.backoff_base_s = 0.1;

  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  EXPECT_FALSE(r.failure_summary.complete());
  EXPECT_EQ(r.failure_summary.members_failed, 1u);
  EXPECT_EQ(r.failure_summary.failed_members.front(), 0u);
}

// -- option validation (satellite: jitter_cv and fault specs) ----------------

TEST(SimulatedOptionsValidation, RejectsBadJitterCv) {
  SimulatedOptions options;
  options.jitter_cv = -0.1;
  EXPECT_THROW(SimulatedExecutor(wl::cori_like_platform(), options),
               InvalidArgument);
  options.jitter_cv = std::nan("");
  EXPECT_THROW(SimulatedExecutor(wl::cori_like_platform(), options),
               InvalidArgument);
  options.jitter_cv = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SimulatedExecutor(wl::cori_like_platform(), options),
               InvalidArgument);
}

TEST(SimulatedOptionsValidation, RejectsBadFaultSpecAtConstruction) {
  SimulatedOptions options;
  options.faults.stage_error_prob = 2.0;
  EXPECT_THROW(SimulatedExecutor(wl::cori_like_platform(), options),
               InvalidArgument);
  options = {};
  options.recovery.backoff_cap_s = -1.0;
  EXPECT_THROW(SimulatedExecutor(wl::cori_like_platform(), options),
               InvalidArgument);
}

}  // namespace
}  // namespace wfe::rt
