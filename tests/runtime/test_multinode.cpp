// Multi-node components in the simulated executor: the paper's s_i / a_i^j
// node sets may span several nodes.
#include <gtest/gtest.h>

#include "core/placement.hpp"
#include "metrics/steady_state.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

using core::StageKind;

SimulatedExecutor executor() {
  return SimulatedExecutor(wl::cori_like_platform());
}

EnsembleSpec spec_with_sim_nodes(std::set<int> sim_nodes, int sim_cores,
                                 std::set<int> ana_nodes,
                                 std::uint64_t steps = 6) {
  EnsembleSpec spec;
  spec.n_steps = steps;
  MemberSpec m;
  m.sim = wl::gltph_like_simulation(std::move(sim_nodes), sim_cores);
  m.analyses.push_back(wl::bipartite_like_analysis(std::move(ana_nodes)));
  spec.members.push_back(std::move(m));
  return spec;
}

TEST(MultiNode, RunsAndTracesNormally) {
  const auto spec = spec_with_sim_nodes({0, 1}, 32, {2});
  const auto result = executor().run(spec);
  EXPECT_EQ(result.trace.step_count({0, -1}), 6u);
  EXPECT_EQ(result.trace.step_count({0, 0}), 6u);
}

TEST(MultiNode, SpanningNodesIsSlowerThanOneBigNode) {
  // The same 16-core simulation allocation on 1 node vs split over 2:
  // the cross-node penalty must make the split strictly slower.
  const auto single = spec_with_sim_nodes({0}, 16, {2});
  const auto split = spec_with_sim_nodes({0, 1}, 16, {2});
  const auto a1 = assess(single, executor().run(single));
  const auto a2 = assess(split, executor().run(split));
  EXPECT_GT(a2.members[0].steady.sim.s, a1.members[0].steady.sim.s);
  // ... by roughly the configured penalty (one extra node).
  const double expected =
      1.0 + wl::cori_like_platform().interconnect.cross_node_compute_penalty;
  EXPECT_NEAR(a2.members[0].steady.sim.s / a1.members[0].steady.sim.s,
              expected, 0.01);
}

TEST(MultiNode, PenaltyGrowsWithNodeCount) {
  const auto two = spec_with_sim_nodes({0, 1}, 32, {2});
  const auto four = spec_with_sim_nodes({0, 1, 2, 3}, 32, {4});
  const auto a2 = assess(two, executor().run(two));
  const auto a4 = assess(four, executor().run(four));
  EXPECT_GT(a4.members[0].steady.sim.s, a2.members[0].steady.sim.s);
}

TEST(MultiNode, ZeroPenaltyMakesSpanningFree) {
  auto platform = wl::cori_like_platform();
  platform.interconnect.cross_node_compute_penalty = 0.0;
  SimulatedExecutor exec(platform);
  const auto single = spec_with_sim_nodes({0}, 16, {2});
  const auto split = spec_with_sim_nodes({0, 1}, 16, {2});
  const auto a1 = assess(single, exec.run(single));
  const auto a2 = assess(split, exec.run(split));
  EXPECT_NEAR(a2.members[0].steady.sim.s, a1.members[0].steady.sim.s, 1e-9);
}

TEST(MultiNode, ShardedChunksGatherInParallel) {
  // Reader partitions pull the producer's shards concurrently, so a read
  // from a 2-node simulation moves half-size shards: it costs about half
  // of reading the whole frame from one remote node, and the slowest
  // (remote) shard dominates whether or not the other shard is local.
  const auto whole_remote = spec_with_sim_nodes({0}, 16, {2});
  const auto shard_remote = spec_with_sim_nodes({0, 1}, 32, {2});
  const auto shard_half_local = spec_with_sim_nodes({0, 1}, 32, {0});
  const auto fully_local = spec_with_sim_nodes({0}, 16, {0});

  const auto read_of = [&](const EnsembleSpec& spec) {
    return met::steady_stage_duration(executor().run(spec).trace, {0, 0},
                                      StageKind::kRead);
  };
  const double r_whole = read_of(whole_remote);
  const double r_shard = read_of(shard_remote);
  const double r_half = read_of(shard_half_local);
  const double r_local = read_of(fully_local);

  EXPECT_NEAR(r_shard, r_whole / 2.0, 0.02 * r_whole);  // half-size shards
  EXPECT_NEAR(r_half, r_shard, 1e-9);  // remote shard dominates the max
  EXPECT_GT(r_half, r_local);
  EXPECT_LT(r_local, 0.1);
}

TEST(MultiNode, SplitComponentsInterfereOnEachNode) {
  // A 2-node simulation leaves half its working set on each node; an
  // analysis co-located with either half sees pressure.
  auto platform = wl::cori_like_platform();
  SimulatedExecutor exec(platform);
  auto spec = spec_with_sim_nodes({0, 1}, 32, {1});
  const auto metrics =
      met::component_metrics(exec.run(spec).trace, {0, 0});
  auto spec_free = spec_with_sim_nodes({0, 1}, 32, {2});
  const auto metrics_free =
      met::component_metrics(exec.run(spec_free).trace, {0, 0});
  EXPECT_GT(metrics.llc_miss_ratio, metrics_free.llc_miss_ratio);
}

TEST(MultiNode, PlacementIndicatorSeesMultiNodeSets) {
  // End-to-end: CP of a 2-node simulation with an analysis on one of its
  // nodes is 1 (subset); with the analysis outside it is 2/3.
  const auto inside = spec_with_sim_nodes({0, 1}, 32, {1});
  EXPECT_DOUBLE_EQ(
      core::placement_indicator(inside.members[0].placement()), 1.0);
  const auto outside = spec_with_sim_nodes({0, 1}, 32, {2});
  EXPECT_NEAR(core::placement_indicator(outside.members[0].placement()),
              2.0 / 3.0, 1e-12);
}

TEST(MultiNode, MoreNodesThanCoresStillRuns) {
  // Degenerate split (1 core over 2 nodes) is clamped, not crashed.
  EnsembleSpec spec;
  spec.n_steps = 2;
  MemberSpec m;
  m.sim = wl::gltph_like_simulation({0, 1}, 1);
  m.analyses.push_back(wl::bipartite_like_analysis({2}, 1));
  spec.members.push_back(std::move(m));
  EXPECT_NO_THROW((void)executor().run(spec));
}

}  // namespace
}  // namespace wfe::rt
