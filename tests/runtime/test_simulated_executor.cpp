// SimulatedExecutor: protocol invariants, determinism, model agreement.
#include "runtime/simulated_executor.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/insitu.hpp"
#include "metrics/steady_state.hpp"
#include "support/error.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

using core::StageKind;

SimulatedExecutor executor() {
  return SimulatedExecutor(wl::cori_like_platform());
}

EnsembleSpec small_spec(int members = 1, int analyses = 1,
                        std::uint64_t steps = 6) {
  EnsembleSpec spec;
  spec.n_steps = steps;
  for (int i = 0; i < members; ++i) {
    MemberSpec m;
    m.sim = wl::gltph_like_simulation({i});
    for (int j = 0; j < analyses; ++j) {
      m.analyses.push_back(wl::bipartite_like_analysis({i}));
    }
    spec.members.push_back(std::move(m));
  }
  return spec;
}

TEST(SimulatedExecutor, ValidatesSpec) {
  EnsembleSpec bad = small_spec();
  bad.members[0].sim.nodes = {99};
  EXPECT_THROW((void)executor().run(bad), SpecError);
}

TEST(SimulatedExecutor, EveryComponentRecordsEveryStep) {
  const EnsembleSpec spec = small_spec(2, 2, 5);
  const ExecutionResult result = executor().run(spec);
  for (const auto& id : result.trace.components()) {
    EXPECT_EQ(result.trace.step_count(id), 5u) << id.str();
  }
}

TEST(SimulatedExecutor, EveryStepCarriesAllStages) {
  const ExecutionResult result = executor().run(small_spec(1, 1, 4));
  const met::ComponentId sim{0, -1};
  const met::ComponentId ana{0, 0};
  for (std::uint64_t s = 0; s < 4; ++s) {
    std::map<StageKind, int> seen;
    for (const auto& r : result.trace.records()) {
      if (r.step == s) seen[r.kind]++;
    }
    EXPECT_EQ(seen[StageKind::kSimulate], 1);
    EXPECT_EQ(seen[StageKind::kSimIdle], 1);
    EXPECT_EQ(seen[StageKind::kWrite], 1);
    EXPECT_EQ(seen[StageKind::kRead], 1);
    EXPECT_EQ(seen[StageKind::kAnalyze], 1);
    EXPECT_EQ(seen[StageKind::kAnaIdle], 1);
  }
  (void)sim;
  (void)ana;
}

TEST(SimulatedExecutor, DeterministicTraces) {
  const EnsembleSpec spec = small_spec(2, 1, 6);
  const ExecutionResult a = executor().run(spec);
  const ExecutionResult b = executor().run(spec);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.records()[i].start, b.trace.records()[i].start);
    EXPECT_EQ(a.trace.records()[i].end, b.trace.records()[i].end);
  }
}

/// The no-buffering protocol in the trace: for each member,
/// W_i ends before any R_i starts, and all R_i end before W_{i+1} starts.
void check_protocol(const met::Trace& trace, std::uint32_t member) {
  std::map<std::uint64_t, double> w_start, w_end;
  std::map<std::uint64_t, double> r_first_start, r_last_end;
  for (const auto& r : trace.records()) {
    if (r.component.member != member) continue;
    if (r.kind == StageKind::kWrite) {
      w_start[r.step] = r.start;
      w_end[r.step] = r.end;
    }
    if (r.kind == StageKind::kRead) {
      auto [it, fresh] = r_first_start.emplace(r.step, r.start);
      if (!fresh) it->second = std::min(it->second, r.start);
      auto [it2, fresh2] = r_last_end.emplace(r.step, r.end);
      if (!fresh2) it2->second = std::max(it2->second, r.end);
    }
  }
  for (const auto& [step, end] : w_end) {
    ASSERT_TRUE(r_first_start.contains(step));
    EXPECT_GE(r_first_start[step], end - 1e-9)
        << "R_" << step << " started before W_" << step << " finished";
    if (w_start.contains(step + 1)) {
      EXPECT_GE(w_start[step + 1], r_last_end[step] - 1e-9)
          << "W_" << step + 1 << " started before R_" << step << " drained";
    }
  }
}

TEST(SimulatedExecutor, HonorsNoBufferingProtocol) {
  const ExecutionResult result = executor().run(small_spec(2, 2, 6));
  check_protocol(result.trace, 0);
  check_protocol(result.trace, 1);
}

TEST(SimulatedExecutor, SimulationsStartSimultaneously) {
  const ExecutionResult result = executor().run(small_spec(2, 1, 3));
  EXPECT_DOUBLE_EQ(result.trace.component_start({0, -1}), 0.0);
  EXPECT_DOUBLE_EQ(result.trace.component_start({1, -1}), 0.0);
}

TEST(SimulatedExecutor, MeasuredMakespanMatchesClosedFormModel) {
  // The measured member makespan is n_steps * sigma* (Eq. 2) plus the tail
  // of the final analysis step (the last R+A happens after the last
  // simulation segment), so model <= measured <= model + sigma*.
  const EnsembleSpec spec = small_spec(1, 1, 12);
  const ExecutionResult result = executor().run(spec);
  const Assessment a = assess(spec, result);
  EXPECT_GE(a.members[0].makespan_measured,
            a.members[0].makespan_model - 1e-6);
  EXPECT_LE(a.members[0].makespan_measured,
            a.members[0].makespan_model + a.members[0].sigma + 1e-6);
}

TEST(SimulatedExecutor, CoLocationRaisesMissRatio) {
  // C_f vs C_c: co-location must raise both components' LLC miss ratios
  // (paper Figure 3).
  const auto cf = wl::paper_config("Cf");
  const auto cc = wl::paper_config("Cc");
  const auto rf = executor().run(cf.spec);
  const auto rc = executor().run(cc.spec);
  const auto mf_sim = met::component_metrics(rf.trace, {0, -1});
  const auto mc_sim = met::component_metrics(rc.trace, {0, -1});
  EXPECT_GT(mc_sim.llc_miss_ratio, mf_sim.llc_miss_ratio);
  const auto mf_ana = met::component_metrics(rf.trace, {0, 0});
  const auto mc_ana = met::component_metrics(rc.trace, {0, 0});
  EXPECT_GT(mc_ana.llc_miss_ratio, mf_ana.llc_miss_ratio);
}

TEST(SimulatedExecutor, RemoteReadSlowerThanLocalRead) {
  const auto cf = wl::paper_config("Cf");  // remote analysis
  const auto cc = wl::paper_config("Cc");  // co-located analysis
  const auto rf = executor().run(cf.spec);
  const auto rc = executor().run(cc.spec);
  const double remote_r =
      met::steady_stage_duration(rf.trace, {0, 0}, StageKind::kRead);
  const double local_r =
      met::steady_stage_duration(rc.trace, {0, 0}, StageKind::kRead);
  EXPECT_GT(remote_r, 100.0 * local_r);
}

TEST(SimulatedExecutor, InterferenceAblationRemovesContention) {
  plat::PlatformSpec platform = wl::cori_like_platform();
  platform.interference.enabled = false;
  SimulatedExecutor quiet(platform);
  const auto cc = wl::paper_config("Cc");
  const auto result = quiet.run(cc.spec);
  const auto sim = met::component_metrics(result.trace, {0, -1});
  // Without interference the miss ratio stays at the baseline.
  EXPECT_NEAR(sim.llc_miss_ratio, 0.04, 1e-9);
}

TEST(SimulatedExecutor, IdleAnalyzerRegimeHasNearZeroSimIdle) {
  // In the calibrated co-location-free baseline the coupling is feasible
  // (Eq. 4), so the simulation never waits on readers.
  const auto cf = wl::paper_config("Cf");
  const auto result = executor().run(cf.spec);
  EXPECT_LT(result.trace.total_in_stage({0, -1}, StageKind::kSimIdle), 1e-6);
  EXPECT_GT(result.trace.total_in_stage({0, 0}, StageKind::kAnaIdle), 1.0);
}

TEST(SimulatedExecutor, TwoAnalysesShareOneWrite) {
  // K = 2 readers read the same chunk: exactly one W per step, two Rs.
  const ExecutionResult result = executor().run(small_spec(1, 2, 3));
  int writes = 0, reads = 0;
  for (const auto& r : result.trace.records()) {
    if (r.kind == StageKind::kWrite) ++writes;
    if (r.kind == StageKind::kRead) ++reads;
  }
  EXPECT_EQ(writes, 3);
  EXPECT_EQ(reads, 6);
}

}  // namespace
}  // namespace wfe::rt
