// The stochastic-jitter mode of the simulated executor.
#include <gtest/gtest.h>

#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"

#include "metrics/traditional.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

EnsembleSpec probe_spec() {
  auto cfg = wl::paper_config("C1.5");
  cfg.spec.n_steps = 8;
  return cfg.spec;
}

TEST(Jitter, RejectsNegativeCv) {
  SimulatedOptions opt;
  opt.jitter_cv = -0.1;
  EXPECT_THROW(SimulatedExecutor(wl::cori_like_platform(), opt),
               InvalidArgument);
}

TEST(Jitter, ZeroCvMatchesDefaultExecutorExactly) {
  SimulatedOptions opt;
  opt.jitter_cv = 0.0;
  opt.seed = 999;  // must be irrelevant at cv = 0
  SimulatedExecutor base(wl::cori_like_platform());
  SimulatedExecutor zero(wl::cori_like_platform(), opt);
  const auto a = base.run(probe_spec()).trace;
  const auto b = zero.run(probe_spec()).trace;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].end, b.records()[i].end);
  }
}

TEST(Jitter, DeterministicGivenSeed) {
  SimulatedOptions opt;
  opt.jitter_cv = 0.05;
  opt.seed = 7;
  SimulatedExecutor x(wl::cori_like_platform(), opt);
  SimulatedExecutor y(wl::cori_like_platform(), opt);
  const auto a = x.run(probe_spec()).trace;
  const auto b = y.run(probe_spec()).trace;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].end, b.records()[i].end);
  }
}

TEST(Jitter, DifferentSeedsDiverge) {
  SimulatedOptions opt;
  opt.jitter_cv = 0.05;
  opt.seed = 1;
  SimulatedExecutor x(wl::cori_like_platform(), opt);
  opt.seed = 2;
  SimulatedExecutor y(wl::cori_like_platform(), opt);
  EXPECT_NE(met::ensemble_makespan(x.run(probe_spec()).trace),
            met::ensemble_makespan(y.run(probe_spec()).trace));
}

TEST(Jitter, StageDurationsVaryWithRoughlyTheRequestedCv) {
  SimulatedOptions opt;
  opt.jitter_cv = 0.10;
  opt.seed = 5;
  SimulatedExecutor exec(wl::cori_like_platform(), opt);
  auto spec = probe_spec();
  spec.n_steps = 40;
  const auto trace = exec.run(spec).trace;
  std::vector<double> s_durations;
  for (const auto& r : trace.records()) {
    if (r.component == met::ComponentId{0, -1} &&
        r.kind == core::StageKind::kSimulate) {
      s_durations.push_back(r.duration());
    }
  }
  ASSERT_EQ(s_durations.size(), 40u);
  const Summary s = summarize(s_durations);
  EXPECT_GT(s.stddev / s.mean, 0.05);
  EXPECT_LT(s.stddev / s.mean, 0.20);
}

TEST(Jitter, MeanStaysNearTheDeterministicValue) {
  // The noise is mean-preserving, so the average simulate-stage duration
  // across many steps stays within a few percent of the noiseless value.
  SimulatedExecutor base(wl::cori_like_platform());
  auto spec = probe_spec();
  spec.n_steps = 60;
  const double clean =
      base.run(spec).trace.total_in_stage({0, -1},
                                          core::StageKind::kSimulate) /
      60.0;
  SimulatedOptions opt;
  opt.jitter_cv = 0.08;
  opt.seed = 11;
  SimulatedExecutor noisy(wl::cori_like_platform(), opt);
  const double jittered =
      noisy.run(spec).trace.total_in_stage({0, -1},
                                           core::StageKind::kSimulate) /
      60.0;
  EXPECT_NEAR(jittered, clean, 0.05 * clean);
}

TEST(Jitter, IpcNoiseTracksTimeNoise) {
  // Cycles are scaled with the duration, so jitter shows up in IPC but
  // never in instruction counts or miss ratios.
  SimulatedOptions opt;
  opt.jitter_cv = 0.10;
  opt.seed = 3;
  SimulatedExecutor exec(wl::cori_like_platform(), opt);
  const auto trace = exec.run(probe_spec()).trace;
  const auto clean_trace =
      SimulatedExecutor(wl::cori_like_platform()).run(probe_spec()).trace;
  const auto noisy_counters = trace.component_counters({0, -1});
  const auto clean_counters = clean_trace.component_counters({0, -1});
  EXPECT_EQ(noisy_counters.instructions, clean_counters.instructions);
  EXPECT_NEAR(noisy_counters.llc_miss_ratio(),
              clean_counters.llc_miss_ratio(), 1e-12);
  EXPECT_NE(noisy_counters.ipc(), clean_counters.ipc());
}

TEST(Jitter, AssessmentStillRunsAndRanksSanely) {
  // Under mild noise the paper's winner keeps a healthy margin.
  SimulatedOptions opt;
  opt.jitter_cv = 0.03;
  opt.seed = 17;
  SimulatedExecutor exec(wl::cori_like_platform(), opt);
  auto best = wl::paper_config("C1.5");
  auto worst = wl::paper_config("C1.1");
  best.spec.n_steps = worst.spec.n_steps = 10;
  const double f_best =
      assess(best.spec, exec.run(best.spec))
          .objective(core::IndicatorKind::kUAP);
  const double f_worst =
      assess(worst.spec, exec.run(worst.spec))
          .objective(core::IndicatorKind::kUAP);
  EXPECT_GT(f_best, f_worst);
}

}  // namespace
}  // namespace wfe::rt
