// Tests for the replay-engine selection knob (runtime/engine_select.hpp):
// parse syntax, $WFENS_ENGINE resolution precedence, and rendering.
#include "runtime/engine_select.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace wfe::rt {
namespace {

using Kind = EngineSelection::Kind;

/// Scoped $WFENS_ENGINE override; restores the prior state on exit so the
/// suite never leaks environment into other tests (or vice versa).
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* prior = std::getenv("WFENS_ENGINE");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    if (value != nullptr) {
      ::setenv("WFENS_ENGINE", value, 1);
    } else {
      ::unsetenv("WFENS_ENGINE");
    }
  }
  ~ScopedEnv() {
    if (had_prior_) {
      ::setenv("WFENS_ENGINE", prior_.c_str(), 1);
    } else {
      ::unsetenv("WFENS_ENGINE");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

TEST(EngineSelect, ParsesSequentialSpellings) {
  for (const char* text : {"seq", "sequential"}) {
    const EngineSelection s = EngineSelection::parse(text);
    EXPECT_EQ(s.kind, Kind::kSequential) << text;
    EXPECT_EQ(s.threads, 1) << text;
  }
}

TEST(EngineSelect, ParsesLpWithExplicitThreadCount) {
  for (const int n : {1, 2, 8, 64, 1000}) {
    const EngineSelection s =
        EngineSelection::parse("lp:" + std::to_string(n));
    EXPECT_EQ(s.kind, Kind::kLp);
    EXPECT_EQ(s.threads, n);
  }
}

TEST(EngineSelect, BareLpUsesTheFixedDefaultCrew) {
  const EngineSelection s = EngineSelection::parse("lp");
  EXPECT_EQ(s.kind, Kind::kLp);
  EXPECT_EQ(s.threads, EngineSelection::kDefaultLpThreads);
}

TEST(EngineSelect, RejectsMalformedSelections) {
  for (const char* text : {"", "lpx", "lp:", "lp:0", "lp:-1", "lp:abc",
                           "lp:2x", "lp:99999", "parallel", "SEQ"}) {
    EXPECT_THROW(EngineSelection::parse(text), SpecError) << text;
  }
}

TEST(EngineSelect, RendersTheSameSyntaxItParses) {
  EXPECT_EQ(EngineSelection{}.str(), "default");
  EXPECT_EQ(EngineSelection::parse("seq").str(), "seq");
  EXPECT_EQ(EngineSelection::parse("lp:6").str(), "lp:6");
  // Round trip through str() for non-default selections.
  const EngineSelection lp = EngineSelection::parse("lp:3");
  EXPECT_EQ(EngineSelection::parse(lp.str()), lp);
}

TEST(EngineSelect, DefaultResolvesSequentialWithoutEnvironment) {
  ScopedEnv env(nullptr);
  const EngineSelection r = EngineSelection{}.resolved();
  EXPECT_EQ(r.kind, Kind::kSequential);
  EXPECT_EQ(r.threads, 1);
}

TEST(EngineSelect, EmptyEnvironmentMeansSequentialToo) {
  ScopedEnv env("");
  EXPECT_EQ(EngineSelection{}.resolved().kind, Kind::kSequential);
}

TEST(EngineSelect, DefaultResolvesFromEnvironment) {
  ScopedEnv env("lp:2");
  const EngineSelection r = EngineSelection{}.resolved();
  EXPECT_EQ(r.kind, Kind::kLp);
  EXPECT_EQ(r.threads, 2);
}

TEST(EngineSelect, ExplicitSelectionIgnoresTheEnvironment) {
  ScopedEnv env("lp:8");
  EXPECT_EQ(EngineSelection::parse("seq").resolved().kind, Kind::kSequential);
  const EngineSelection lp4 = EngineSelection::parse("lp:4").resolved();
  EXPECT_EQ(lp4.threads, 4);  // not the environment's 8
}

TEST(EngineSelect, MalformedEnvironmentThrowsInsteadOfFallingBack) {
  ScopedEnv env("lp:zero");
  EXPECT_THROW(EngineSelection{}.resolved(), SpecError);
}

TEST(EngineSelect, ResolvedIsIdempotent) {
  ScopedEnv env("lp:2");
  const EngineSelection once = EngineSelection{}.resolved();
  EXPECT_EQ(once.resolved(), once);
}

}  // namespace
}  // namespace wfe::rt
