// Native-mode coverage of the buffered coupling: real threads, real chunks.
#include <gtest/gtest.h>

#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/native_executor.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

TEST(NativeBuffering, BufferedEnsembleCompletesAllSteps) {
  EnsembleSpec spec = wl::small_native_ensemble(1, 2, 6);
  spec.members[0].buffer_capacity = 3;
  const ExecutionResult result = NativeExecutor().run(spec);
  for (const auto& id : result.trace.components()) {
    EXPECT_EQ(result.trace.step_count(id), 6u) << id.str();
  }
  for (const auto& series : result.analysis_outputs) {
    EXPECT_EQ(series.results.size(), 6u);
  }
}

TEST(NativeBuffering, ResultsIdenticalAcrossBufferDepths) {
  // Buffering changes timing, never data: the collective-variable series
  // must be bit-identical for capacity 1 and 4.
  EnsembleSpec base = wl::small_native_ensemble(1, 1, 5);
  EnsembleSpec deep = base;
  deep.members[0].buffer_capacity = 4;
  const auto r1 = NativeExecutor().run(base);
  const auto r4 = NativeExecutor().run(deep);
  ASSERT_EQ(r1.analysis_outputs.size(), 1u);
  ASSERT_EQ(r4.analysis_outputs.size(), 1u);
  const auto& s1 = r1.analysis_outputs[0].results;
  const auto& s4 = r4.analysis_outputs[0].results;
  ASSERT_EQ(s1.size(), s4.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].values, s4[i].values) << "step " << i;
  }
}

TEST(NativeBuffering, FileTierWorksWithBuffering) {
  EnsembleSpec spec = wl::small_native_ensemble(1, 1, 4);
  spec.members[0].buffer_capacity = 2;
  NativeOptions opt;
  opt.staging = NativeOptions::StagingTier::kFile;
  const ExecutionResult result = NativeExecutor(opt).run(spec);
  EXPECT_EQ(result.analysis_outputs[0].results.size(), 4u);
}

TEST(NativeBuffering, AssessmentHoldsOnBufferedRealRuns) {
  EnsembleSpec spec = wl::small_native_ensemble(2, 1, 5);
  for (auto& m : spec.members) m.buffer_capacity = 2;
  const auto a = assess(spec, NativeExecutor().run(spec));
  for (const auto& m : a.members) {
    EXPECT_GT(m.sigma, 0.0);
    EXPECT_LE(m.efficiency, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace wfe::rt
