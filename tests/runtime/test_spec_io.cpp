// WFES spec persistence.
#include "runtime/spec_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "support/error.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

bool structurally_equal(const EnsembleSpec& a, const EnsembleSpec& b) {
  if (a.name != b.name || a.n_steps != b.n_steps ||
      a.members.size() != b.members.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    const MemberSpec& x = a.members[i];
    const MemberSpec& y = b.members[i];
    if (x.buffer_capacity != y.buffer_capacity) return false;
    if (x.sim.nodes != y.sim.nodes || x.sim.cores != y.sim.cores ||
        x.sim.stride != y.sim.stride || x.sim.natoms != y.sim.natoms) {
      return false;
    }
    if (x.analyses.size() != y.analyses.size()) return false;
    for (std::size_t j = 0; j < x.analyses.size(); ++j) {
      if (x.analyses[j].nodes != y.analyses[j].nodes ||
          x.analyses[j].cores != y.analyses[j].cores ||
          x.analyses[j].kernel != y.analyses[j].kernel) {
        return false;
      }
    }
  }
  return true;
}

TEST(SpecIo, PaperConfigsRoundTrip) {
  for (const auto& c : wl::paper_table2()) {
    const EnsembleSpec back = spec_from_text(spec_to_text(c.spec));
    EXPECT_TRUE(structurally_equal(c.spec, back)) << c.name;
    EXPECT_NO_THROW(back.validate(wl::cori_like_platform())) << c.name;
  }
  for (const auto& c : wl::paper_table4()) {
    EXPECT_TRUE(
        structurally_equal(c.spec, spec_from_text(spec_to_text(c.spec))))
        << c.name;
  }
}

TEST(SpecIo, PreservesBufferCapacityAndKernels) {
  auto spec = wl::paper_config("C2.8").spec;
  spec.members[0].buffer_capacity = 3;
  spec.members[1].analyses[1].kernel = "rgyr";
  const EnsembleSpec back = spec_from_text(spec_to_text(spec));
  EXPECT_EQ(back.members[0].buffer_capacity, 3);
  EXPECT_EQ(back.members[1].analyses[1].kernel, "rgyr");
}

TEST(SpecIo, PreservesMultiNodeSets) {
  auto spec = wl::paper_config("Cc").spec;
  spec.members[0].sim.nodes = {0, 2, 5};
  const EnsembleSpec back = spec_from_text(spec_to_text(spec));
  EXPECT_EQ(back.members[0].sim.nodes, (std::set<int>{0, 2, 5}));
}

TEST(SpecIo, PreservesNameWithSpaces) {
  auto spec = wl::paper_config("Cc").spec;
  spec.name = "my ensemble v2";
  EXPECT_EQ(spec_from_text(spec_to_text(spec)).name, "my ensemble v2");
}

TEST(SpecIo, RejectsBadHeader) {
  EXPECT_THROW((void)spec_from_text("WFES 9\nend 0\n"), SerializationError);
  EXPECT_THROW((void)spec_from_text(""), SerializationError);
}

TEST(SpecIo, RejectsTruncation) {
  std::string text = spec_to_text(wl::paper_config("C1.5").spec);
  text.resize(text.rfind("end"));
  EXPECT_THROW((void)spec_from_text(text), SerializationError);
}

TEST(SpecIo, RejectsCountMismatch) {
  EXPECT_THROW((void)spec_from_text("WFES 1\nname x\nsteps 5\nend 2\n"),
               SerializationError);
}

TEST(SpecIo, RejectsOrphanComponentLines) {
  EXPECT_THROW((void)spec_from_text(
                   "WFES 1\nname x\nsteps 5\nsim cores 1 stride 1 natoms 1 "
                   "nodes 0\nend 0\n"),
               SerializationError);
  EXPECT_THROW((void)spec_from_text(
                   "WFES 1\nname x\nsteps 5\nanalysis kernel rgyr cores 1 "
                   "nodes 0\nend 0\n"),
               SerializationError);
}

TEST(SpecIo, RejectsMemberWithoutSim) {
  EXPECT_THROW(
      (void)spec_from_text("WFES 1\nname x\nsteps 5\nmember buffer 1\nend 1\n"),
      SerializationError);
}

TEST(SpecIo, RejectsMissingSteps) {
  EXPECT_THROW((void)spec_from_text("WFES 1\nname x\nend 0\n"),
               SerializationError);
}

TEST(SpecIo, RejectsNegativeNode) {
  EXPECT_THROW(
      (void)spec_from_text("WFES 1\nname x\nsteps 5\nmember buffer 1\nsim "
                           "cores 1 stride 1 natoms 1 nodes -3\nend 1\n"),
      SerializationError);
}

TEST(SpecIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "wfens-spec-io-test.wfes";
  const EnsembleSpec original = wl::paper_config("C1.3").spec;
  save_spec(path, original);
  EXPECT_TRUE(structurally_equal(original, load_spec(path)));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace wfe::rt
