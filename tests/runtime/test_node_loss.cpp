// Node-level fault domains end-to-end: a permanent node death kills the
// resident member's work, loses un-replicated staged chunks, and migrates
// the member to a survivor — deterministically, with the health transitions
// on the record.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "metrics/traditional.hpp"
#include "platform/health.hpp"
#include "runtime/simulated_executor.hpp"
#include "workload/presets.hpp"

namespace wfe::rt {
namespace {

using core::StageKind;

/// Two members, member i pinned to node i.
EnsembleSpec spread_spec(std::uint64_t steps = 6) {
  EnsembleSpec spec;
  spec.n_steps = steps;
  for (int i = 0; i < 2; ++i) {
    MemberSpec m;
    m.sim = wl::gltph_like_simulation({i});
    m.sim.nodes = {i};
    auto analysis = wl::bipartite_like_analysis({i});
    analysis.nodes = {i};
    m.analyses.push_back(std::move(analysis));
    spec.members.push_back(std::move(m));
  }
  return spec;
}

SimulatedOptions death_of_node0(double at_s = 60.0, int replication = 1) {
  SimulatedOptions options;
  options.faults = wl::node_down_at(0, at_s);
  options.recovery.kind = res::RecoveryKind::kCheckpointRestart;
  options.recovery.checkpoint_period = 2;
  options.recovery.chunk_replication = replication;
  return options;
}

TEST(NodeLoss, DeathMigratesTheMemberAndCompletes) {
  const EnsembleSpec spec = spread_spec();
  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), death_of_node0()).run(spec);
  const res::FailureSummary& fs = r.failure_summary;

  EXPECT_EQ(fs.node_downs, 1u);
  EXPECT_EQ(fs.migrations, 1u);
  EXPECT_TRUE(fs.complete());
  for (const auto& id : r.trace.components()) {
    EXPECT_EQ(r.trace.step_count(id), spec.n_steps) << id.str();
  }

  // The migration is a first-class trace stage, and the member's post-
  // migration work runs off the dead node.
  int migrate_records = 0;
  for (const auto& rec : r.trace.records()) {
    if (rec.kind == StageKind::kMigrate) ++migrate_records;
  }
  EXPECT_EQ(migrate_records, 1);

  // The health log shows exactly one down transition, for node 0.
  ASSERT_FALSE(r.health_events.empty());
  int downs = 0;
  for (const plat::HealthEvent& e : r.health_events) {
    if (e.to == plat::NodeHealth::kDown) {
      ++downs;
      EXPECT_EQ(e.node, 0);
      EXPECT_DOUBLE_EQ(e.t_s, 60.0);
    }
  }
  EXPECT_EQ(downs, 1);
}

TEST(NodeLoss, MigrationIsDeterministicAcrossReruns) {
  const EnsembleSpec spec = spread_spec();
  const ExecutionResult first =
      SimulatedExecutor(wl::cori_like_platform(), death_of_node0()).run(spec);
  for (int rerun = 0; rerun < 2; ++rerun) {
    const ExecutionResult again =
        SimulatedExecutor(wl::cori_like_platform(), death_of_node0())
            .run(spec);
    ASSERT_EQ(again.trace.size(), first.trace.size());
    for (std::size_t i = 0; i < first.trace.size(); ++i) {
      EXPECT_EQ(again.trace.records()[i].start,
                first.trace.records()[i].start);
      EXPECT_EQ(again.trace.records()[i].end, first.trace.records()[i].end);
      EXPECT_EQ(again.trace.records()[i].kind, first.trace.records()[i].kind);
    }
    EXPECT_EQ(again.failure_summary.migrations,
              first.failure_summary.migrations);
    EXPECT_EQ(again.failure_summary.chunks_lost,
              first.failure_summary.chunks_lost);
    EXPECT_EQ(again.failure_summary.wasted_core_seconds,
              first.failure_summary.wasted_core_seconds);
  }
}

TEST(NodeLoss, ReplicationSavesStagedChunks) {
  // With a surviving ring replica nothing is lost; without replication the
  // loss accounting can only be worse, and any lost chunk forces a rollback.
  const EnsembleSpec spec = spread_spec(8);
  const ExecutionResult solo =
      SimulatedExecutor(wl::cori_like_platform(), death_of_node0(60.0, 1))
          .run(spec);
  const ExecutionResult mirrored =
      SimulatedExecutor(wl::cori_like_platform(), death_of_node0(60.0, 2))
          .run(spec);

  EXPECT_EQ(mirrored.failure_summary.chunks_lost, 0u);
  EXPECT_GE(solo.failure_summary.chunks_lost,
            mirrored.failure_summary.chunks_lost);
  EXPECT_TRUE(solo.failure_summary.complete());
  EXPECT_TRUE(mirrored.failure_summary.complete());
  // Replicated writes are priced: the fault-free prefix (before the death)
  // can only get slower, never faster.
  EXPECT_GE(met::ensemble_makespan(mirrored.trace), 0.0);
}

TEST(NodeLoss, MigrationHookPicksTheTarget) {
  const EnsembleSpec spec = spread_spec();
  SimulatedOptions options = death_of_node0();
  std::vector<rt::MigrationRequest> seen;
  options.migrate = [&seen](const rt::MigrationRequest& request) {
    seen.push_back(request);
    return 3;  // an otherwise-idle survivor
  };
  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].member, 0u);
  EXPECT_EQ(seen[0].dead_node, 0);
  EXPECT_DOUBLE_EQ(seen[0].now_s, 60.0);
  EXPECT_TRUE(std::find(seen[0].up_nodes.begin(), seen[0].up_nodes.end(),
                        0) == seen[0].up_nodes.end());
  EXPECT_EQ(r.failure_summary.migrations, 1u);
  EXPECT_EQ(r.failure_summary.replans, 1u);
  EXPECT_TRUE(r.failure_summary.complete());
}

TEST(NodeLoss, FatalCrashSweepStaysComplete) {
  // Fatal stochastic crashes at a survivable rate: every death migrates,
  // the ensemble still finishes, and the summary stays self-consistent.
  const EnsembleSpec spec = spread_spec();
  SimulatedOptions options;
  options.faults = wl::fatal_node_crashes(700.0);
  options.recovery.kind = res::RecoveryKind::kCheckpointRestart;
  options.recovery.checkpoint_period = 2;
  const ExecutionResult r =
      SimulatedExecutor(wl::cori_like_platform(), options).run(spec);
  const res::FailureSummary& fs = r.failure_summary;
  EXPECT_EQ(fs.node_downs, static_cast<std::uint64_t>([&] {
              int downs = 0;
              for (const auto& e : r.health_events) {
                downs += e.to == plat::NodeHealth::kDown ? 1 : 0;
              }
              return downs;
            }()));
  EXPECT_GE(fs.migrations, fs.node_downs > 0 ? 1u : 0u);
}

}  // namespace
}  // namespace wfe::rt
