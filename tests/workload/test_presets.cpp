// Preset sanity: the calibrated platform and workload presets.
#include "workload/presets.hpp"

#include <gtest/gtest.h>

#include "analysis/cost_model.hpp"
#include "mdsim/cost_model.hpp"
#include "platform/topology.hpp"

namespace wfe::wl {
namespace {

TEST(Presets, PlatformValidates) {
  EXPECT_NO_THROW(cori_like_platform().validate());
  EXPECT_NO_THROW(cori_like_platform(2).validate());
}

TEST(Presets, PlatformIsCoriShaped) {
  const auto p = cori_like_platform();
  EXPECT_EQ(p.node.cores, 32);
  EXPECT_GT(p.node.llc_bytes, 16e6);
  EXPECT_TRUE(p.interference.enabled);
}

TEST(Presets, SimulationUsesPaperSettings) {
  const auto sim = gltph_like_simulation({0});
  EXPECT_EQ(sim.cores, 16);
  EXPECT_EQ(sim.stride, 800);
  EXPECT_EQ(sim.nodes, (std::set<int>{0}));
}

TEST(Presets, AnalysisUsesPaperSettings) {
  const auto ana = bipartite_like_analysis({1});
  EXPECT_EQ(ana.cores, 8);
  EXPECT_EQ(ana.kernel, "bipartite-eigen");
}

TEST(Presets, PaperStepCountMatchesStrideMath) {
  // 30 000 MD steps at stride 800 -> 37 complete frames.
  EXPECT_EQ(kPaperInSituSteps, 30'000u / 800u);
}

TEST(Presets, SimulationProfileIsComputeBound) {
  const auto sim = gltph_like_simulation({0});
  const auto prof = md::md_stage_profile(sim.cost, sim.natoms, sim.stride);
  const auto ana = bipartite_like_analysis({0});
  const auto aprof = ana::analysis_stage_profile(ana.cost, sim.natoms);
  // Analyses are more memory-intensive than simulations (paper §2.3).
  EXPECT_GT(aprof.llc_refs_per_instr * aprof.base_miss_ratio,
            5.0 * prof.llc_refs_per_instr * prof.base_miss_ratio);
  EXPECT_GT(aprof.cache_sensitivity, prof.cache_sensitivity);
}

TEST(Presets, RemoteStagingReadCostsSeconds) {
  // The DIMES-like data-locality asymmetry: a frame read across nodes
  // costs seconds; a local copy costs milliseconds.
  const auto p = cori_like_platform();
  const auto sim = gltph_like_simulation({0});
  const double frame = md::frame_payload_bytes(sim.natoms);
  const double remote =
      plat::network_transfer_time(p.interconnect, 0, 1, frame);
  const double local = plat::local_copy_time(p.node, frame);
  EXPECT_GT(remote, 1.0);
  EXPECT_LT(local, 0.1);
}

TEST(Presets, NativeConfigIsSmallAndThermostatted) {
  const auto cfg = native_md_config();
  EXPECT_LE(cfg.fcc_cells, 6);
  EXPECT_GT(cfg.integrator.thermostat_tau, 0.0);
}

TEST(Presets, SmallNativeEnsembleShape) {
  const auto spec = small_native_ensemble(2, 2, 5);
  EXPECT_EQ(spec.members.size(), 2u);
  EXPECT_EQ(spec.members[0].analyses.size(), 2u);
  EXPECT_EQ(spec.n_steps, 5u);
  // Distinct seeds per member so trajectories differ.
  EXPECT_NE(spec.members[0].sim.native.seed, spec.members[1].sim.native.seed);
}

}  // namespace
}  // namespace wfe::wl
