// Campaign (repeated-trials) aggregation.
#include "workload/campaign.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::wl {
namespace {

std::vector<NamedConfig> two_configs() {
  return {paper_config("Cc"), paper_config("Cf")};
}

CampaignOptions quick(int trials = 3, double cv = 0.05) {
  CampaignOptions o;
  o.trials = trials;
  o.jitter_cv = cv;
  o.n_steps = 5;
  return o;
}

TEST(Campaign, RejectsDegenerateInputs) {
  EXPECT_THROW(
      (void)run_campaign({}, cori_like_platform(), quick()),
      InvalidArgument);
  CampaignOptions o = quick();
  o.trials = 0;
  EXPECT_THROW((void)run_campaign(two_configs(), cori_like_platform(), o),
               InvalidArgument);
}

TEST(Campaign, ResultOrderMatchesInputAndCountsTrials) {
  const auto stats =
      run_campaign(two_configs(), cori_like_platform(), quick(4));
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "Cc");
  EXPECT_EQ(stats[1].name, "Cf");
  EXPECT_EQ(stats[0].objective.count, 4u);
  EXPECT_EQ(stats[0].makespan.count, 4u);
}

TEST(Campaign, WinsSumToTrials) {
  const auto stats =
      run_campaign(two_configs(), cori_like_platform(), quick(6));
  EXPECT_EQ(stats[0].wins + stats[1].wins, 6);
}

TEST(Campaign, ZeroJitterGivesZeroSpread) {
  const auto stats =
      run_campaign(two_configs(), cori_like_platform(), quick(3, 0.0));
  EXPECT_NEAR(stats[0].objective.stddev, 0.0, 1e-15);
  EXPECT_NEAR(stats[0].makespan.stddev, 0.0, 1e-12);
}

TEST(Campaign, JitterProducesSpread) {
  const auto stats =
      run_campaign(two_configs(), cori_like_platform(), quick(5, 0.08));
  EXPECT_GT(stats[0].objective.stddev, 0.0);
  EXPECT_GT(stats[0].makespan.stddev, 0.0);
}

TEST(Campaign, DeterministicGivenBaseSeed) {
  const auto a =
      run_campaign(two_configs(), cori_like_platform(), quick(3));
  const auto b =
      run_campaign(two_configs(), cori_like_platform(), quick(3));
  EXPECT_EQ(a[0].objective.mean, b[0].objective.mean);
  EXPECT_EQ(a[1].makespan.mean, b[1].makespan.mean);
  EXPECT_EQ(a[0].wins, b[0].wins);
}

TEST(Campaign, CcBeatsCfOnTheFinalIndicatorEveryTrial) {
  // The deterministic gap (3.3x) dwarfs 5% noise.
  const auto stats =
      run_campaign(two_configs(), cori_like_platform(), quick(5, 0.05));
  EXPECT_EQ(stats[0].wins, 5);  // Cc
  EXPECT_EQ(stats[1].wins, 0);  // Cf
}

TEST(Campaign, IndicatorStageIsConfigurable) {
  // At the raw-usage stage (P^U) Cf wins instead (higher E, same cores).
  CampaignOptions o = quick(3, 0.0);
  o.indicator = core::IndicatorKind::kU;
  const auto stats = run_campaign(two_configs(), cori_like_platform(), o);
  EXPECT_EQ(stats[1].wins, 3);  // Cf
}

TEST(Campaign, MeanTracksDeterministicValueUnderMildNoise) {
  CampaignOptions o = quick(10, 0.04);
  const auto noisy = run_campaign(two_configs(), cori_like_platform(), o);
  o.trials = 1;
  o.jitter_cv = 0.0;
  const auto clean = run_campaign(two_configs(), cori_like_platform(), o);
  EXPECT_NEAR(noisy[0].objective.mean, clean[0].objective.mean,
              0.05 * clean[0].objective.mean);
}

}  // namespace
}  // namespace wfe::wl
