// Tables 2 and 4 are encoded exactly: node assignments, node counts,
// member counts, and the placement indicators they imply.
#include "workload/paper_configs.hpp"

#include <gtest/gtest.h>

#include "core/placement.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::wl {
namespace {

std::set<int> sim_nodes(const NamedConfig& c, std::size_t member) {
  return c.spec.members[member].sim.nodes;
}
std::set<int> ana_nodes(const NamedConfig& c, std::size_t member,
                        std::size_t j) {
  return c.spec.members[member].analyses[j].nodes;
}

TEST(Table2, HasSevenConfigurations) {
  const auto t2 = paper_table2();
  ASSERT_EQ(t2.size(), 7u);
  EXPECT_EQ(t2[0].name, "Cf");
  EXPECT_EQ(t2[6].name, "C1.5");
}

TEST(Table2, NodeCountsMatchTheTable) {
  for (const auto& c : paper_table2()) {
    EXPECT_EQ(c.spec.total_nodes(), c.nodes) << c.name;
  }
  EXPECT_EQ(paper_config("Cf").nodes, 2);
  EXPECT_EQ(paper_config("Cc").nodes, 1);
  EXPECT_EQ(paper_config("C1.1").nodes, 3);
  EXPECT_EQ(paper_config("C1.4").nodes, 2);
}

TEST(Table2, MemberCounts) {
  EXPECT_EQ(paper_config("Cf").spec.members.size(), 1u);
  EXPECT_EQ(paper_config("Cc").spec.members.size(), 1u);
  for (const auto& c : paper_set1()) {
    EXPECT_EQ(c.spec.members.size(), 2u) << c.name;
    for (const auto& m : c.spec.members) {
      EXPECT_EQ(m.analyses.size(), 1u);
    }
  }
}

TEST(Table2, ExactNodeAssignments) {
  // Row by row from Table 2.
  const auto cf = paper_config("Cf");
  EXPECT_EQ(sim_nodes(cf, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(cf, 0, 0), (std::set<int>{1}));

  const auto c11 = paper_config("C1.1");
  EXPECT_EQ(sim_nodes(c11, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c11, 0, 0), (std::set<int>{2}));
  EXPECT_EQ(sim_nodes(c11, 1), (std::set<int>{1}));
  EXPECT_EQ(ana_nodes(c11, 1, 0), (std::set<int>{2}));

  const auto c13 = paper_config("C1.3");
  EXPECT_EQ(sim_nodes(c13, 0), ana_nodes(c13, 0, 0));  // member 1 co-located
  EXPECT_NE(sim_nodes(c13, 1), ana_nodes(c13, 1, 0));  // member 2 spread

  const auto c15 = paper_config("C1.5");
  EXPECT_EQ(sim_nodes(c15, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c15, 0, 0), (std::set<int>{0}));
  EXPECT_EQ(sim_nodes(c15, 1), (std::set<int>{1}));
  EXPECT_EQ(ana_nodes(c15, 1, 0), (std::set<int>{1}));
}

TEST(Table2, PlacementIndicators) {
  // CP = 1 for fully co-located members; 1/2 for dedicated analysis nodes
  // (§4.1 example: C1.1 has s1 = {0}, a1 = {2}).
  auto cp = [](const NamedConfig& c, std::size_t member) {
    return core::placement_indicator(c.spec.members[member].placement());
  };
  EXPECT_DOUBLE_EQ(cp(paper_config("Cc"), 0), 1.0);
  EXPECT_DOUBLE_EQ(cp(paper_config("Cf"), 0), 0.5);
  EXPECT_DOUBLE_EQ(cp(paper_config("C1.1"), 0), 0.5);
  EXPECT_DOUBLE_EQ(cp(paper_config("C1.3"), 0), 1.0);
  EXPECT_DOUBLE_EQ(cp(paper_config("C1.3"), 1), 0.5);
  EXPECT_DOUBLE_EQ(cp(paper_config("C1.5"), 0), 1.0);
  EXPECT_DOUBLE_EQ(cp(paper_config("C1.5"), 1), 1.0);
}

TEST(Table4, HasEightConfigurations) {
  const auto t4 = paper_table4();
  ASSERT_EQ(t4.size(), 8u);
  EXPECT_EQ(t4[0].name, "C2.1");
  EXPECT_EQ(t4[7].name, "C2.8");
}

TEST(Table4, EveryMemberHasTwoAnalyses) {
  for (const auto& c : paper_table4()) {
    ASSERT_EQ(c.spec.members.size(), 2u) << c.name;
    for (const auto& m : c.spec.members) {
      EXPECT_EQ(m.analyses.size(), 2u) << c.name;
    }
  }
}

TEST(Table4, NodeCountsMatchTheTable) {
  for (const auto& c : paper_table4()) {
    EXPECT_EQ(c.spec.total_nodes(), c.nodes) << c.name;
  }
  EXPECT_EQ(paper_config("C2.1").nodes, 3);
  EXPECT_EQ(paper_config("C2.6").nodes, 2);
  EXPECT_EQ(paper_config("C2.8").nodes, 2);
}

TEST(Table4, ExactAssignmentsForKeyRows) {
  const auto c27 = paper_config("C2.7");
  EXPECT_EQ(sim_nodes(c27, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c27, 0, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c27, 0, 1), (std::set<int>{1}));
  EXPECT_EQ(sim_nodes(c27, 1), (std::set<int>{1}));
  EXPECT_EQ(ana_nodes(c27, 1, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c27, 1, 1), (std::set<int>{1}));

  const auto c28 = paper_config("C2.8");
  EXPECT_EQ(ana_nodes(c28, 0, 0), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c28, 0, 1), (std::set<int>{0}));
  EXPECT_EQ(ana_nodes(c28, 1, 0), (std::set<int>{1}));
  EXPECT_EQ(ana_nodes(c28, 1, 1), (std::set<int>{1}));
}

TEST(Table4, C28IsFullyCoLocated) {
  const auto c28 = paper_config("C2.8");
  for (const auto& m : c28.spec.members) {
    EXPECT_DOUBLE_EQ(core::placement_indicator(m.placement()), 1.0);
  }
  // C2.7 members mix one local and one remote analysis: CP = 0.75.
  const auto c27 = paper_config("C2.7");
  for (const auto& m : c27.spec.members) {
    EXPECT_DOUBLE_EQ(core::placement_indicator(m.placement()), 0.75);
  }
}

TEST(Configs, AllValidateAgainstTheCoriPlatform) {
  const auto platform = cori_like_platform();
  for (const auto& c : paper_table2()) {
    EXPECT_NO_THROW(c.spec.validate(platform)) << c.name;
  }
  for (const auto& c : paper_table4()) {
    EXPECT_NO_THROW(c.spec.validate(platform)) << c.name;
  }
}

TEST(Configs, AllUsePaperResourceSettings) {
  for (const auto& c : paper_table2()) {
    EXPECT_EQ(c.spec.n_steps, kPaperInSituSteps);
    for (const auto& m : c.spec.members) {
      EXPECT_EQ(m.sim.cores, 16);
      EXPECT_EQ(m.sim.stride, 800);
      for (const auto& a : m.analyses) EXPECT_EQ(a.cores, 8);
    }
  }
}

TEST(Configs, LookupByNameThrowsOnUnknown) {
  EXPECT_THROW((void)paper_config("C9.9"), InvalidArgument);
  EXPECT_EQ(paper_config("C2.4").name, "C2.4");
}

TEST(Configs, Set1IsC11ThroughC15) {
  const auto set1 = paper_set1();
  ASSERT_EQ(set1.size(), 5u);
  EXPECT_EQ(set1.front().name, "C1.1");
  EXPECT_EQ(set1.back().name, "C1.5");
}

}  // namespace
}  // namespace wfe::wl
