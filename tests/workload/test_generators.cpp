// Placement enumeration generators.
#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::wl {
namespace {

plat::PlatformSpec platform() { return cori_like_platform(4); }

TEST(Generators, RejectsDegenerateOptions) {
  EnumerationOptions opt;
  opt.members = 0;
  EXPECT_THROW((void)enumerate_placements(platform(), opt), InvalidArgument);
  opt = {};
  opt.node_pool = 99;
  EXPECT_THROW((void)enumerate_placements(platform(), opt), InvalidArgument);
  opt = {};
  opt.members = 7;  // 7 * 2 = 14 slots > cap
  EXPECT_THROW((void)enumerate_placements(platform(), opt), InvalidArgument);
}

TEST(Generators, SingleMemberSingleNode) {
  EnumerationOptions opt;
  opt.members = 1;
  opt.analyses_per_member = 1;
  opt.node_pool = 1;
  const auto all = enumerate_placements(platform(), opt);
  ASSERT_EQ(all.size(), 1u);  // only s0a0
  EXPECT_EQ(all[0].nodes, 1);
}

TEST(Generators, CanonicalizationCollapsesRelabelings) {
  EnumerationOptions opt;
  opt.members = 1;
  opt.analyses_per_member = 1;
  opt.node_pool = 2;
  const auto all = enumerate_placements(platform(), opt);
  // Raw: 4 assignments; canonical: {s0a0, s0a1} only.
  ASSERT_EQ(all.size(), 2u);
  std::set<std::string> names;
  for (const auto& c : all) names.insert(c.name);
  EXPECT_TRUE(names.contains("s0a0"));
  EXPECT_TRUE(names.contains("s0a1"));
}

TEST(Generators, WithoutCanonicalizationAllAssignmentsAppear) {
  EnumerationOptions opt;
  opt.members = 1;
  opt.analyses_per_member = 1;
  opt.node_pool = 2;
  opt.canonicalize = false;
  const auto all = enumerate_placements(platform(), opt);
  EXPECT_EQ(all.size(), 4u);
}

TEST(Generators, PaperScenarioSpaceContainsTable2Shapes) {
  // 2 members x (sim + 1 analysis) over 3 nodes: the canonical space must
  // contain the shapes of C1.1 ... C1.5.
  EnumerationOptions opt;
  opt.members = 2;
  opt.analyses_per_member = 1;
  opt.node_pool = 3;
  const auto all = enumerate_placements(platform(), opt);
  std::set<std::string> names;
  for (const auto& c : all) names.insert(c.name);
  EXPECT_TRUE(names.contains("s0a1|s2a1"));  // C1.1 canonical form
  EXPECT_TRUE(names.contains("s0a1|s0a2"));  // C1.2
  EXPECT_TRUE(names.contains("s0a0|s1a2"));  // C1.3
  EXPECT_TRUE(names.contains("s0a1|s0a1"));  // C1.4
  EXPECT_TRUE(names.contains("s0a0|s1a1"));  // C1.5
}

TEST(Generators, OversubscriptionFilterDropsInfeasiblePlacements) {
  // A 2-core-node platform cannot host 16+8-core components at all.
  plat::PlatformSpec tiny = platform();
  tiny.node.cores = 2;
  EnumerationOptions opt;
  opt.members = 1;
  opt.analyses_per_member = 1;
  opt.node_pool = 2;
  EXPECT_TRUE(enumerate_placements(tiny, opt).empty());

  opt.skip_oversubscribed = false;
  EXPECT_FALSE(enumerate_placements(tiny, opt).empty());
}

TEST(Generators, AllGeneratedSpecsValidate) {
  EnumerationOptions opt;
  opt.members = 2;
  opt.analyses_per_member = 2;
  opt.node_pool = 3;
  const auto all = enumerate_placements(platform(), opt);
  EXPECT_GT(all.size(), 10u);
  for (const auto& c : all) {
    EXPECT_NO_THROW(c.spec.validate(platform())) << c.name;
    EXPECT_EQ(c.spec.total_nodes(), c.nodes) << c.name;
    EXPECT_EQ(c.spec.members.size(), 2u);
  }
}

TEST(Generators, NamesAreUnique) {
  EnumerationOptions opt;
  opt.members = 2;
  opt.analyses_per_member = 1;
  opt.node_pool = 3;
  const auto all = enumerate_placements(platform(), opt);
  std::set<std::string> names;
  for (const auto& c : all) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate " << c.name;
  }
}

}  // namespace
}  // namespace wfe::wl
