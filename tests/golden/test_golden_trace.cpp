// Golden-trace harness: locks the executor + observability stack against
// bit-level drift.
//
// Each scenario replays a small paper configuration deterministically and
// serializes both trace artifacts — the WFET stage trace and the obs JSONL
// span log — then compares them byte-for-byte against the files checked in
// under tests/golden/data/. Any change to event ordering, stage pricing,
// fault injection, obs emission, or exporter formatting shows up here as a
// normalized first-difference diff.
//
// The harness also pins the zero-observer-effect guarantee: a run executed
// with a recorder session installed must produce a stage trace
// byte-identical to the same run executed untraced.
//
// Regenerating (after an intentional model change):
//   tools/update_golden.sh        # or: WFENS_UPDATE_GOLDEN=1 ./test_golden
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/trace_io.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/simulated_executor.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/str.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

#ifndef WFENS_GOLDEN_DIR
#error "WFENS_GOLDEN_DIR must point at the checked-in golden directory"
#endif

namespace wfe {
namespace {

namespace fs = std::filesystem;

struct Scenario {
  const char* name;     ///< golden file stem
  const char* config;   ///< paper configuration to replay
  std::uint64_t steps;  ///< in situ step override (small, keeps goldens lean)
  double stage_error_prob;  ///< 0 = fault-free scenario
};

// Two scenarios: a pristine replay and a faulted one exercising the
// resilience paths (transient faults + retry recovery), so the goldens
// cover both the fault-free fast path and the attempt/backoff machinery.
constexpr Scenario kScenarios[] = {
    {"cf_small", "Cf", 6, 0.0},
    {"cc_faulty", "Cc", 8, 0.05},
};

rt::SimulatedOptions scenario_options(const Scenario& sc) {
  rt::SimulatedOptions options;
  if (sc.stage_error_prob > 0.0) {
    options.faults.stage_error_prob = sc.stage_error_prob;
    options.faults.seed = 7;  // fixed and chosen to fire: goldens must
                              // replay exactly and cover the fault paths
    options.recovery.kind = res::RecoveryKind::kRetry;
  }
  return options;
}

rt::EnsembleSpec scenario_spec(const Scenario& sc) {
  rt::EnsembleSpec spec = wl::paper_config(sc.config).spec;
  spec.n_steps = sc.steps;
  return spec;
}

/// Replay a scenario. With `traced`, an obs session records into `log`.
rt::ExecutionResult run_scenario(const Scenario& sc, bool traced,
                                 obs::RunLog* log) {
  const rt::SimulatedExecutor exec(wl::cori_like_platform(),
                                   scenario_options(sc));
  const rt::EnsembleSpec spec = scenario_spec(sc);
  if (!traced) return exec.run(spec);
  obs::Recorder recorder;
  obs::Session session(recorder);
  rt::ExecutionResult result = exec.run(spec);
  if (log != nullptr) *log = recorder.take();
  return result;
}

fs::path golden_path(const std::string& file) {
  return fs::path(WFENS_GOLDEN_DIR) / file;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden file " << path
                  << " — run tools/update_golden.sh to (re)generate";
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool update_mode() {
  const char* env = std::getenv("WFENS_UPDATE_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write golden " << path;
  out << content;
}

/// Normalizing differ: bit-level comparison with a line-oriented first
/// difference report, so a drifted golden fails with *where* and *what*
/// instead of a multi-kilobyte string mismatch.
void expect_bytes_equal(const std::string& expected,
                        const std::string& actual,
                        const std::string& label) {
  if (expected == actual) return;
  std::istringstream e(expected), a(actual);
  std::string el, al;
  std::size_t line = 0;
  for (;;) {
    const bool has_e = static_cast<bool>(std::getline(e, el));
    const bool has_a = static_cast<bool>(std::getline(a, al));
    ++line;
    if (!has_e && !has_a) break;  // only trailing bytes differ
    if (!has_e || !has_a || el != al) {
      FAIL() << label << " drifted at line " << line << ":\n  golden: "
             << (has_e ? el : std::string("<end of file>"))
             << "\n  actual: " << (has_a ? al : std::string("<end of file>"))
             << "\nIf the change is intentional, regenerate with "
                "tools/update_golden.sh";
    }
  }
  FAIL() << label << " differs only in trailing bytes (sizes "
         << expected.size() << " vs " << actual.size() << ")";
}

class GoldenTrace : public ::testing::TestWithParam<Scenario> {};

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenTrace,
                         ::testing::ValuesIn(kScenarios),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// The WFET stage trace of an untraced run must match the checked-in golden
// byte for byte: the full executor stack (engine ordering, stage pricing,
// fault injection, recovery) is deterministic by contract.
TEST_P(GoldenTrace, StageTraceMatchesGolden) {
  const Scenario& sc = GetParam();
  const rt::ExecutionResult result = run_scenario(sc, false, nullptr);
  const std::string actual = met::trace_to_text(result.trace);
  const fs::path path = golden_path(std::string(sc.name) + ".wfet");
  if (update_mode()) {
    write_file(path, actual);
    GTEST_SKIP() << "updated " << path;
  }
  expect_bytes_equal(read_file(path), actual, path.filename().string());
}

// The obs JSONL span log of a traced run must match its golden too: the
// emission sites, interning order, sequence numbering and exporter
// formatting are all deterministic in simulated mode (virtual time only).
TEST_P(GoldenTrace, SpanLogMatchesGolden) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (WFENS_OBS=OFF)";
  }
  const Scenario& sc = GetParam();
  obs::RunLog log;
  run_scenario(sc, true, &log);
  const std::string actual = obs::runlog_to_jsonl(log);
  const fs::path path = golden_path(std::string(sc.name) + ".jsonl");
  if (update_mode()) {
    write_file(path, actual);
    GTEST_SKIP() << "updated " << path;
  }
  expect_bytes_equal(read_file(path), actual, path.filename().string());
}

// Zero observer effect, the harness's core guarantee: running with the
// recorder installed must not perturb the replay in any way — the stage
// trace is bit-identical with and without the session.
TEST_P(GoldenTrace, ObserverEffectIsZero) {
  const Scenario& sc = GetParam();
  const rt::ExecutionResult untraced = run_scenario(sc, false, nullptr);
  obs::RunLog log;
  const rt::ExecutionResult traced = run_scenario(sc, true, &log);
  EXPECT_EQ(met::trace_to_text(untraced.trace),
            met::trace_to_text(traced.trace));
  EXPECT_EQ(untraced.events_processed, traced.events_processed);
  if (obs::kCompiledIn) {
    EXPECT_FALSE(log.empty()) << "traced run recorded nothing";
    EXPECT_FALSE(traced.counters.empty());
  }
  EXPECT_TRUE(untraced.counters.empty());
}

// The checked-in JSONL golden must round-trip byte-identically through the
// parser — so the golden stays readable by wfens_report --timeline forever.
TEST_P(GoldenTrace, GoldenSpanLogRoundTrips) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (WFENS_OBS=OFF)";
  }
  if (update_mode()) GTEST_SKIP() << "golden update pass";
  const Scenario& sc = GetParam();
  const fs::path path = golden_path(std::string(sc.name) + ".jsonl");
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  const obs::RunLog log = obs::runlog_from_jsonl(text);
  EXPECT_EQ(obs::runlog_to_jsonl(log), text);
}

// The Chrome export of the faulted golden scenario carries spans from at
// least four subsystems: component tracks, the DTL view, the resilience
// track and the engine track.
TEST(GoldenTraceChrome, FaultedScenarioCoversFourSubsystems) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (WFENS_OBS=OFF)";
  }
  obs::RunLog log;
  run_scenario(kScenarios[1], true, &log);
  const std::vector<std::string> tracks = log.tracks();
  const auto has = [&](const std::string& t) {
    return std::find(tracks.begin(), tracks.end(), t) != tracks.end();
  };
  EXPECT_TRUE(has("sim0"));
  EXPECT_TRUE(has("dtl/m0"));
  EXPECT_TRUE(has("resilience"));
  EXPECT_TRUE(has("engine"));

  // And the export is structurally valid Chrome trace_event JSON.
  const json::Value doc = json::parse(obs::chrome_trace_json(log));
  const json::Value& events = doc.at("traceEvents");
  ASSERT_GT(events.as_array().size(), 0u);
  for (const json::Value& e : events.as_array()) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i" || ph == "C") << ph;
  }
}

}  // namespace
}  // namespace wfe
