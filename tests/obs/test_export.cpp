// Exporter contracts: Chrome trace_event structure, JSONL round-trip
// fidelity, and the JSONL parser's rejection of every malformed shape.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace wfe::obs {
namespace {

/// A small but representative log: two tracks, an instant, two counters
/// (one monotonic, one gauge), and a name that needs JSON escaping.
RunLog sample_log() {
  Recorder rec;
  rec.span("sim0", "S", 0.0, 1.5);
  rec.span("ana0.0", "A", 0.5, 2.0);
  rec.instant("resilience", "crash \"hard\"", 1.0);
  rec.add_counter("dtl.puts", 1.5, 1.0);
  rec.set_counter("engine.queue_depth", 1.75, 3.0);
  rec.span("sim0", "W", 1.5, 1.75);
  return rec.take();
}

// -- Chrome trace_event ------------------------------------------------------

TEST(ChromeTrace, IsValidJsonWithTraceEventsArray) {
  const json::Value doc = json::parse(chrome_trace_json(sample_log()));
  const auto& events = doc.at("traceEvents").as_array();
  EXPECT_GT(events.size(), 0u);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(ChromeTrace, EmitsThreadMetadataPerTrack) {
  const json::Value doc = json::parse(chrome_trace_json(sample_log()));
  std::vector<std::string> thread_names;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "M") continue;
    if (e.at("name").as_string() == "thread_name") {
      thread_names.push_back(e.at("args").at("name").as_string());
    } else if (e.at("name").as_string() == "process_name") {
      EXPECT_EQ(e.at("args").at("name").as_string(), "wfens");
    }
  }
  // One thread_name record per track, in first-appearance order.
  const std::vector<std::string> expected = {"sim0", "ana0.0", "resilience"};
  EXPECT_EQ(thread_names, expected);
}

TEST(ChromeTrace, SpansBecomeCompleteEventsInMicroseconds) {
  const json::Value doc = json::parse(chrome_trace_json(sample_log()));
  bool found = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "X" || e.at("name").as_string() != "S")
      continue;
    found = true;
    EXPECT_EQ(e.at("ts").as_number(), 0.0);
    EXPECT_EQ(e.at("dur").as_number(), 1.5e6);  // 1.5 s in microseconds
    EXPECT_EQ(e.at("pid").as_number(), 1.0);
    EXPECT_GE(e.at("tid").as_number(), 1.0);
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, CountersBecomeCounterEvents) {
  const json::Value doc = json::parse(chrome_trace_json(sample_log()));
  bool found = false;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "C") continue;
    if (e.at("name").as_string() != "dtl.puts") continue;
    found = true;
    EXPECT_EQ(e.at("args").at("value").as_number(), 1.0);
  }
  EXPECT_TRUE(found);
}

TEST(ChromeTrace, SameLogSerializesIdentically) {
  const RunLog log = sample_log();
  EXPECT_EQ(chrome_trace_json(log), chrome_trace_json(log));
}

// -- JSONL round trip --------------------------------------------------------

TEST(Jsonl, RoundTripIsByteIdentical) {
  const RunLog log = sample_log();
  const std::string text = runlog_to_jsonl(log);
  const RunLog parsed = runlog_from_jsonl(text);
  EXPECT_EQ(runlog_to_jsonl(parsed), text);
}

TEST(Jsonl, RoundTripPreservesEventsAndCounters) {
  const RunLog log = sample_log();
  const RunLog parsed = runlog_from_jsonl(runlog_to_jsonl(log));
  ASSERT_EQ(parsed.size(), log.size());
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].seq, log.events[i].seq);
    EXPECT_EQ(parsed.events[i].kind, log.events[i].kind);
    EXPECT_EQ(parsed.events[i].start, log.events[i].start);
    EXPECT_EQ(parsed.events[i].end, log.events[i].end);
    EXPECT_EQ(parsed.events[i].value, log.events[i].value);
  }
  EXPECT_EQ(parsed.counters, log.counters);
  EXPECT_EQ(parsed.tracks(), log.tracks());
}

TEST(Jsonl, EmptyLogRoundTrips) {
  Recorder rec;
  const RunLog log = rec.take();
  const std::string text = runlog_to_jsonl(log);
  const RunLog parsed = runlog_from_jsonl(text);
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(runlog_to_jsonl(parsed), text);
}

TEST(Jsonl, HeaderAnnouncesEventCount) {
  const std::string text = runlog_to_jsonl(sample_log());
  std::istringstream lines(text);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  const json::Value h = json::parse(header);
  EXPECT_EQ(h.at("jsonl").as_string(), "wfens-obs");
  EXPECT_EQ(h.at("version").as_number(), 1.0);
  EXPECT_EQ(h.at("events").as_number(), 6.0);
}

// -- JSONL malformed input ---------------------------------------------------

TEST(JsonlMalformed, MissingHeaderThrows) {
  EXPECT_THROW(
      runlog_from_jsonl(R"({"type":"counters","values":[]})" "\n"),
      SerializationError);
  EXPECT_THROW(runlog_from_jsonl(""), SerializationError);
}

TEST(JsonlMalformed, WrongMagicThrows) {
  EXPECT_THROW(runlog_from_jsonl(
                   R"({"jsonl":"other","version":1,"events":0})" "\n"
                   R"({"type":"counters","values":[]})" "\n"),
               SerializationError);
}

TEST(JsonlMalformed, UnsupportedVersionThrows) {
  EXPECT_THROW(runlog_from_jsonl(
                   R"({"jsonl":"wfens-obs","version":2,"events":0})" "\n"
                   R"({"type":"counters","values":[]})" "\n"),
               SerializationError);
}

TEST(JsonlMalformed, OutOfOrderSequenceThrows) {
  const std::string text =
      R"({"jsonl":"wfens-obs","version":1,"events":2})" "\n"
      R"({"type":"instant","seq":0,"track":"t","name":"a","at":0})" "\n"
      R"({"type":"instant","seq":2,"track":"t","name":"b","at":1})" "\n"
      R"({"type":"counters","values":[]})" "\n";
  EXPECT_THROW(runlog_from_jsonl(text), SerializationError);
}

TEST(JsonlMalformed, SpanEndingBeforeStartThrows) {
  const std::string text =
      R"({"jsonl":"wfens-obs","version":1,"events":1})" "\n"
      R"({"type":"span","seq":0,"track":"t","name":"s","start":2,"end":1})"
      "\n"
      R"({"type":"counters","values":[]})" "\n";
  EXPECT_THROW(runlog_from_jsonl(text), SerializationError);
}

TEST(JsonlMalformed, UnknownTypeTagThrows) {
  const std::string text =
      R"({"jsonl":"wfens-obs","version":1,"events":1})" "\n"
      R"({"type":"mystery","seq":0,"track":"t","name":"s","at":0})" "\n"
      R"({"type":"counters","values":[]})" "\n";
  EXPECT_THROW(runlog_from_jsonl(text), SerializationError);
}

TEST(JsonlMalformed, MissingTrailerThrows) {
  const std::string text =
      R"({"jsonl":"wfens-obs","version":1,"events":1})" "\n"
      R"({"type":"instant","seq":0,"track":"t","name":"a","at":0})" "\n";
  EXPECT_THROW(runlog_from_jsonl(text), SerializationError);
}

TEST(JsonlMalformed, ContentAfterTrailerThrows) {
  const std::string text =
      R"({"jsonl":"wfens-obs","version":1,"events":0})" "\n"
      R"({"type":"counters","values":[]})" "\n"
      R"({"type":"counters","values":[]})" "\n";
  EXPECT_THROW(runlog_from_jsonl(text), SerializationError);
}

TEST(JsonlMalformed, EventCountMismatchThrows) {
  const std::string text =
      R"({"jsonl":"wfens-obs","version":1,"events":5})" "\n"
      R"({"type":"instant","seq":0,"track":"t","name":"a","at":0})" "\n"
      R"({"type":"counters","values":[]})" "\n";
  EXPECT_THROW(runlog_from_jsonl(text), SerializationError);
}

TEST(JsonlMalformed, BareGarbageThrows) {
  EXPECT_THROW(runlog_from_jsonl("not json at all\n"), SerializationError);
  EXPECT_THROW(runlog_from_jsonl("[1,2,3]\n"), SerializationError);
}

// -- file I/O ----------------------------------------------------------------

TEST(RunlogFiles, WriteThenReadJsonl) {
  const RunLog log = sample_log();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "wfens_test_export.jsonl";
  write_runlog(path, log);
  const RunLog parsed = read_runlog_jsonl(path);
  EXPECT_EQ(runlog_to_jsonl(parsed), runlog_to_jsonl(log));
  std::filesystem::remove(path);
}

TEST(RunlogFiles, NonJsonlExtensionGetsChromeFormat) {
  const RunLog log = sample_log();
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "wfens_test_export.json";
  write_runlog(path, log);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), chrome_trace_json(log));
  std::filesystem::remove(path);
}

TEST(RunlogFiles, MissingFileThrows) {
  EXPECT_THROW(read_runlog_jsonl("/nonexistent/dir/none.jsonl"), Error);
}

}  // namespace
}  // namespace wfe::obs
