// Timeline model + ASCII Gantt renderer.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "support/error.hpp"

namespace wfe::obs {
namespace {

TEST(Timeline, EmptyHasZeroExtent) {
  const Timeline t;
  EXPECT_TRUE(t.tracks.empty());
  EXPECT_EQ(t.t_min(), 0.0);
  EXPECT_EQ(t.t_max(), 0.0);
}

TEST(Timeline, AddCreatesTracksInInsertionOrder) {
  Timeline t;
  t.add("beta", "S", 0.0, 1.0);
  t.add("alpha", "A", 1.0, 2.0);
  t.add("beta", "W", 2.0, 3.0);
  ASSERT_EQ(t.tracks.size(), 2u);
  EXPECT_EQ(t.tracks[0].name, "beta");  // insertion order, not sorted
  EXPECT_EQ(t.tracks[1].name, "alpha");
  ASSERT_EQ(t.tracks[0].spans.size(), 2u);
  EXPECT_EQ(t.tracks[0].spans[1].label, "W");
}

TEST(Timeline, ExtentSpansAllTracks) {
  Timeline t;
  t.add("a", "x", 2.0, 5.0);
  t.add("b", "y", -1.0, 3.0);
  EXPECT_EQ(t.t_min(), -1.0);
  EXPECT_EQ(t.t_max(), 5.0);
}

TEST(TimelineFromRunlog, KeepsSpansDropsInstantsAndCounters) {
  Recorder rec;
  rec.span("sim0", "S", 0.0, 1.0);
  rec.instant("sim0", "tick", 0.5);
  rec.add_counter("n", 0.5, 1.0);
  rec.span("engine", "run", 0.0, 2.0);
  const Timeline t = timeline_from_runlog(rec.take());
  ASSERT_EQ(t.tracks.size(), 2u);
  EXPECT_EQ(t.tracks[0].name, "sim0");
  EXPECT_EQ(t.tracks[1].name, "engine");
  EXPECT_EQ(t.tracks[0].spans.size(), 1u);
  EXPECT_EQ(t.tracks[1].spans[0].label, "run");
}

TEST(RenderGantt, EmptyTimelineRendersSomethingFinite) {
  const std::string out = render_gantt(Timeline{});
  EXPECT_FALSE(out.empty());
}

TEST(RenderGantt, EveryTrackGetsARow) {
  Timeline t;
  t.add("sim0", "S", 0.0, 4.0);
  t.add("ana0.0", "A", 2.0, 6.0);
  const std::string out = render_gantt(t, 40);
  EXPECT_NE(out.find("sim0"), std::string::npos);
  EXPECT_NE(out.find("ana0.0"), std::string::npos);
}

TEST(RenderGantt, SpanGlyphIsFirstLabelCharacter) {
  Timeline t;
  t.add("sim0", "S", 0.0, 10.0);
  const std::string out = render_gantt(t, 32);
  EXPECT_NE(out.find('S'), std::string::npos);
}

TEST(RenderGantt, OverlappingLabelsCollideIntoHash) {
  Timeline t;
  // Two differently-labeled spans covering the same interval on one track.
  t.add("x", "A", 0.0, 10.0);
  t.add("x", "B", 0.0, 10.0);
  const std::string out = render_gantt(t, 32);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(RenderGantt, DeterministicAndWidthSensitive) {
  Timeline t;
  t.add("a", "S", 0.0, 3.0);
  t.add("b", "W", 1.0, 4.0);
  EXPECT_EQ(render_gantt(t, 48), render_gantt(t, 48));
  EXPECT_NE(render_gantt(t, 16), render_gantt(t, 64));
}

TEST(RenderGantt, TinyWidthThrows) {
  Timeline t;
  t.add("a", "S", 0.0, 1.0);
  EXPECT_THROW(render_gantt(t, 7), InvalidArgument);
  EXPECT_THROW(render_gantt(t, 0), InvalidArgument);
  EXPECT_THROW(render_gantt(t, -5), InvalidArgument);
  EXPECT_NO_THROW(render_gantt(t, 8));
}

TEST(RenderGantt, LegendListsLabels) {
  Timeline t;
  t.add("a", "S", 0.0, 1.0);
  t.add("a", "W", 1.0, 2.0);
  const std::string out = render_gantt(t, 32);
  // Legend mentions both labels somewhere beyond the glyph cells.
  EXPECT_NE(out.find("S"), std::string::npos);
  EXPECT_NE(out.find("W"), std::string::npos);
}

TEST(RenderGantt, ZeroDurationTimelineDoesNotDivideByZero) {
  Timeline t;
  t.add("a", "i", 1.0, 1.0);  // single zero-length span
  EXPECT_NO_THROW(render_gantt(t, 32));
}

}  // namespace
}  // namespace wfe::obs
