// Round-trip fuzzing for the JSONL span-log exporter.
//
// Two directions, both seeded and reproducible:
//  * generate random RunLogs -> serialize -> parse -> re-serialize must be
//    byte-identical (the exporter/parser pair is a true inverse);
//  * mutate well-formed JSONL text at random -> the parser must either
//    accept or throw a wfe:: error — it must never crash, hang or return
//    quietly corrupted data. Run under ASan/UBSan by tools/sanitize.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::obs {
namespace {

/// Alphabet for random track/counter names: includes characters that need
/// JSON escaping so the escaper is on the fuzzed path.
std::string random_name(Xoshiro256& rng) {
  static const char kAlphabet[] =
      "abcz019./_-\" \\\t{}[]:,\x01\x1f";
  const std::size_t len = 1 + rng() % 12;
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng() % (sizeof(kAlphabet) - 1)]);
  }
  return s;
}

/// Doubles spanning magnitudes, negatives and awkward fractions — all must
/// survive %.17g round-tripping exactly.
double random_time(Xoshiro256& rng) {
  const double mag = static_cast<double>(rng() % 7);
  const double base = rng.uniform(0.0, std::pow(10.0, mag - 3.0));
  return (rng() % 8 == 0) ? -base : base;
}

RunLog random_log(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Recorder rec;
  // A small pool of names makes interning collisions likely.
  std::vector<std::string> names;
  for (int i = 0; i < 6; ++i) names.push_back(random_name(rng));
  const auto pick = [&] { return names[rng() % names.size()]; };
  const std::size_t n = rng() % 40;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 4) {
      case 0: {
        const double a = random_time(rng);
        const double b = random_time(rng);
        rec.span(pick(), pick(), std::min(a, b), std::max(a, b));
        break;
      }
      case 1:
        rec.instant(pick(), pick(), random_time(rng));
        break;
      case 2:
        rec.add_counter("mono." + pick(), random_time(rng),
                        rng.uniform(0.0, 10.0));
        break;
      default:
        rec.set_counter("gauge." + pick(), random_time(rng),
                        random_time(rng));
        break;
    }
  }
  return rec.take();
}

TEST(ExportFuzz, RandomLogsRoundTripByteIdentically) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const RunLog log = random_log(seed);
    const std::string text = runlog_to_jsonl(log);
    RunLog parsed;
    try {
      parsed = runlog_from_jsonl(text);
    } catch (const Error& e) {
      FAIL() << "seed " << seed << ": exporter output rejected: " << e.what();
    }
    EXPECT_EQ(runlog_to_jsonl(parsed), text) << "seed " << seed;
    EXPECT_EQ(parsed.size(), log.size()) << "seed " << seed;
  }
}

TEST(ExportFuzz, RandomLogsExportValidChromeJson) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const RunLog log = random_log(seed);
    const std::string text = chrome_trace_json(log);
    EXPECT_FALSE(text.empty()) << "seed " << seed;
    // Determinism: same log, same bytes.
    EXPECT_EQ(chrome_trace_json(log), text) << "seed " << seed;
  }
}

/// Apply one random byte-level mutation to `text`.
std::string mutate(const std::string& text, Xoshiro256& rng) {
  std::string out = text;
  if (out.empty()) return "x";
  const std::size_t pos = rng() % out.size();
  switch (rng() % 4) {
    case 0:  // flip a byte
      out[pos] = static_cast<char>(rng() % 256);
      break;
    case 1:  // delete a byte
      out.erase(pos, 1);
      break;
    case 2:  // duplicate a slice
      out.insert(pos, out.substr(pos, 1 + rng() % 16));
      break;
    default:  // truncate
      out.resize(pos);
      break;
  }
  return out;
}

TEST(ExportFuzz, MutatedInputNeverCrashesTheParser) {
  const std::string base = runlog_to_jsonl(random_log(7));
  Xoshiro256 rng(0xbadf00d);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 400; ++i) {
    std::string text = base;
    const int rounds = 1 + static_cast<int>(rng() % 3);
    for (int r = 0; r < rounds; ++r) text = mutate(text, rng);
    try {
      const RunLog parsed = runlog_from_jsonl(text);
      // Accepted input must re-serialize cleanly (no corrupted interning).
      const std::string again = runlog_to_jsonl(parsed);
      EXPECT_FALSE(again.empty());
      ++accepted;
    } catch (const Error&) {
      ++rejected;  // any wfe:: error is the correct rejection path
    }
  }
  // The harness only proves "no crash", but a mutation corpus that never
  // rejects anything would mean the mutations are too tame to matter.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(accepted + rejected, 400);
}

TEST(ExportFuzz, RandomGarbageNeverCrashesTheParser) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 200; ++i) {
    std::string text;
    const std::size_t len = rng() % 256;
    for (std::size_t j = 0; j < len; ++j) {
      text.push_back(static_cast<char>(rng() % 256));
    }
    try {
      (void)runlog_from_jsonl(text);
    } catch (const Error&) {
      // expected for almost all inputs
    }
  }
}

}  // namespace
}  // namespace wfe::obs
