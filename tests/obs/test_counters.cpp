// CounterRegistry semantics: kind declaration at first touch, monotonicity
// enforcement, snapshot determinism.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace wfe::obs {
namespace {

TEST(CounterRegistry, StartsEmpty) {
  CounterRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(reg.value("never.touched"), 0.0);
}

TEST(CounterRegistry, AddAccumulatesAndReturnsTotal) {
  CounterRegistry reg;
  EXPECT_EQ(reg.add("engine.events", 3.0), 3.0);
  EXPECT_EQ(reg.add("engine.events", 2.0), 5.0);
  EXPECT_EQ(reg.value("engine.events"), 5.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, SetOverwritesGauge) {
  CounterRegistry reg;
  EXPECT_EQ(reg.set("queue.depth", 7.0), 7.0);
  EXPECT_EQ(reg.set("queue.depth", 2.0), 2.0);  // gauges may move down
  EXPECT_EQ(reg.value("queue.depth"), 2.0);
}

TEST(CounterRegistry, ZeroDeltaIsLegal) {
  CounterRegistry reg;
  EXPECT_EQ(reg.add("n", 0.0), 0.0);
  EXPECT_EQ(reg.value("n"), 0.0);
  EXPECT_EQ(reg.size(), 1u);  // the touch still declares the counter
}

TEST(CounterRegistry, NegativeMonotonicDeltaThrows) {
  CounterRegistry reg;
  reg.add("n", 1.0);
  EXPECT_THROW(reg.add("n", -0.5), InvalidArgument);
  EXPECT_EQ(reg.value("n"), 1.0);  // failed add leaves the total untouched
}

TEST(CounterRegistry, NonFiniteMonotonicDeltaThrows) {
  CounterRegistry reg;
  EXPECT_THROW(reg.add("n", std::numeric_limits<double>::infinity()),
               InvalidArgument);
  EXPECT_THROW(reg.add("n", std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
}

TEST(CounterRegistry, KindIsFixedAtFirstTouch) {
  CounterRegistry reg;
  reg.add("mono", 1.0);
  reg.set("gauge", 1.0);
  EXPECT_THROW(reg.set("mono", 2.0), InvalidArgument);
  EXPECT_THROW(reg.add("gauge", 1.0), InvalidArgument);
}

TEST(CounterRegistry, SnapshotIsSortedByName) {
  CounterRegistry reg;
  reg.add("zeta", 1.0);
  reg.set("alpha", 2.0);
  reg.add("mid", 3.0);
  const CounterSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[0].kind, CounterKind::kGauge);
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
  EXPECT_EQ(snap[2].kind, CounterKind::kMonotonic);
}

TEST(CounterRegistry, ClearForgetsKinds) {
  CounterRegistry reg;
  reg.add("n", 1.0);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  reg.set("n", 4.0);  // re-declarable with the other kind after clear
  EXPECT_EQ(reg.value("n"), 4.0);
}

TEST(CounterRegistry, ConcurrentAddsSumExactly) {
  CounterRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kAdds; ++i) reg.add("shared", 1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.value("shared"), static_cast<double>(kThreads * kAdds));
}

TEST(CounterSnapshot, TextRenderingIsDeterministic) {
  CounterRegistry reg;
  reg.add("dtl.puts", 6.0);
  reg.set("engine.queue_depth", 0.0);
  const std::string text = snapshot_to_text(reg.snapshot());
  EXPECT_EQ(text, snapshot_to_text(reg.snapshot()));
  EXPECT_NE(text.find("dtl.puts"), std::string::npos);
  EXPECT_NE(text.find("engine.queue_depth"), std::string::npos);
}

TEST(CounterKindName, RoundTripNames) {
  EXPECT_STREQ(to_string(CounterKind::kMonotonic), "monotonic");
  EXPECT_STREQ(to_string(CounterKind::kGauge), "gauge");
}

}  // namespace
}  // namespace wfe::obs
