// Property suite over the instrumented runtime: for swept paper
// configurations (and scheduler thread counts) the recorded RunLog must
// satisfy the structural invariants of the observability layer —
// well-formed spans per track, monotone counters, exact consistency with
// the met::Trace stage records, valid exports, and a zero observer effect.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "metrics/trace_io.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "runtime/simulated_executor.hpp"
#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "support/json.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

constexpr double kTol = 1e-9;

struct SweepCase {
  const char* config;
  double stage_error_prob;  ///< > 0 exercises the resilience emissions too
};

constexpr SweepCase kCases[] = {
    {"Cf", 0.0},
    {"Cc", 0.0},
    {"C1.2", 0.0},
    {"C2.3", 0.0},
    {"Cc", 0.05},
};

struct TracedRun {
  rt::ExecutionResult result;
  obs::RunLog log;
};

TracedRun traced_run(const SweepCase& c) {
  rt::SimulatedOptions options;
  if (c.stage_error_prob > 0.0) {
    options.faults.stage_error_prob = c.stage_error_prob;
    options.faults.seed = 7;  // known to fire within 8 steps on Cc
    options.recovery.kind = res::RecoveryKind::kRetry;
  }
  rt::EnsembleSpec spec = wl::paper_config(c.config).spec;
  spec.n_steps = c.stage_error_prob > 0.0 ? 8 : 7;
  const rt::SimulatedExecutor exec(wl::cori_like_platform(), options);
  TracedRun out;
  obs::Recorder recorder;
  obs::Session session(recorder);
  out.result = exec.run(spec);
  out.log = recorder.take();
  return out;
}

class InstrumentationSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    if (!obs::kCompiledIn) {
      GTEST_SKIP() << "observability compiled out (WFENS_OBS=OFF)";
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Configs, InstrumentationSweep,
                         ::testing::ValuesIn(kCases), [](const auto& info) {
                           std::string name = info.param.config;
                           for (char& ch : name) {
                             if (ch == '.') ch = '_';
                           }
                           return name + (info.param.stage_error_prob > 0.0
                                              ? "_faulty"
                                              : "");
                         });

// Every span has end >= start, and spans on one *component* track never
// partially overlap: a component executes its stages sequentially, so its
// spans tile the time axis (boundaries may touch).
TEST_P(InstrumentationSweep, SpansAreWellFormedPerTrack) {
  const TracedRun run = traced_run(GetParam());
  for (const obs::Event& e : run.log.events) {
    EXPECT_GE(e.end, e.start) << "span #" << e.seq;
  }
  for (const met::ComponentId& id : run.result.trace.components()) {
    const std::vector<obs::Event> spans = run.log.spans_on(id.str());
    ASSERT_FALSE(spans.empty()) << id.str();
    // Emission order == completion order, so sorting by start must keep a
    // component's spans pairwise disjoint.
    std::vector<obs::Event> sorted = spans;
    // Tie-break equal starts by end so zero-length idle markers sort
    // before the stage that begins at the same instant.
    std::sort(sorted.begin(), sorted.end(),
              [](const obs::Event& a, const obs::Event& b) {
                return a.start != b.start ? a.start < b.start : a.end < b.end;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      EXPECT_GE(sorted[i].start, sorted[i - 1].end - kTol)
          << id.str() << " spans overlap at " << sorted[i].start;
    }
  }
}

// The engine's "run" span bounds every virtual-time emission in the log:
// nothing is stamped outside the engine's clock range.
TEST_P(InstrumentationSweep, EngineRunSpanBoundsAllVirtualTimeSpans) {
  const TracedRun run = traced_run(GetParam());
  const std::vector<obs::Event> engine = run.log.spans_on("engine");
  ASSERT_EQ(engine.size(), 1u);
  EXPECT_EQ(run.log.str(engine[0].name), "run");
  for (const met::ComponentId& id : run.result.trace.components()) {
    for (const obs::Event& e : run.log.spans_on(id.str())) {
      EXPECT_GE(e.start, engine[0].start - kTol);
      EXPECT_LE(e.end, engine[0].end + kTol);
    }
  }
}

// Monotonic counters never move backwards, sample by sample, and the final
// sample equals the snapshot total attached to the log and the result.
TEST_P(InstrumentationSweep, CountersAreMonotoneAndMatchSnapshots) {
  const TracedRun run = traced_run(GetParam());
  ASSERT_FALSE(run.log.counters.empty());
  EXPECT_EQ(run.result.counters, run.log.counters);
  for (const obs::CounterValue& c : run.log.counters) {
    const std::vector<obs::Event> samples = run.log.samples_of(c.name);
    ASSERT_FALSE(samples.empty()) << c.name;
    if (c.kind == obs::CounterKind::kMonotonic) {
      for (std::size_t i = 1; i < samples.size(); ++i) {
        EXPECT_GE(samples[i].value, samples[i - 1].value) << c.name;
      }
    }
    EXPECT_EQ(samples.back().value, c.value) << c.name;
  }
}

// The engine's event counter agrees with the executor's own accounting.
TEST_P(InstrumentationSweep, EngineEventCounterMatchesResult) {
  const TracedRun run = traced_run(GetParam());
  const std::vector<obs::Event> samples = run.log.samples_of("engine.events");
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.back().value,
            static_cast<double>(run.result.events_processed));
}

// Exact agreement with the stage trace: each component's obs spans are the
// met::Trace records of that component, in order, with mnemonic labels.
TEST_P(InstrumentationSweep, SpanSetMatchesStageTrace) {
  const TracedRun run = traced_run(GetParam());
  for (const met::ComponentId& id : run.result.trace.components()) {
    const auto records = run.result.trace.for_component(id);
    const std::vector<obs::Event> spans = run.log.spans_on(id.str());
    ASSERT_EQ(spans.size(), records.size()) << id.str();
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(run.log.str(spans[i].name),
                met::stage_mnemonic(records[i].kind))
          << id.str() << " #" << i;
      EXPECT_EQ(spans[i].start, records[i].start) << id.str() << " #" << i;
      EXPECT_EQ(spans[i].end, records[i].end) << id.str() << " #" << i;
    }
  }
}

// Faulted runs surface the resilience subsystem: fault instants on the
// resilience track and matching res.* counters.
TEST_P(InstrumentationSweep, FaultedRunsCoverResilience) {
  const SweepCase& c = GetParam();
  if (c.stage_error_prob == 0.0) {
    GTEST_SKIP() << "fault-free case";
  }
  const TracedRun run = traced_run(c);
  const std::vector<std::string> tracks = run.log.tracks();
  EXPECT_NE(std::find(tracks.begin(), tracks.end(), "resilience"),
            tracks.end());
  double faults = 0.0;
  for (const obs::CounterValue& cv : run.log.counters) {
    if (cv.name == "res.crash_kills" || cv.name == "res.transient_faults") {
      faults += cv.value;
    }
  }
  EXPECT_GT(faults, 0.0);
}

// Both exports of every swept log are valid: the Chrome trace parses as
// JSON with only known phases, and the JSONL log round-trips exactly.
TEST_P(InstrumentationSweep, ExportsAreValid) {
  const TracedRun run = traced_run(GetParam());
  const json::Value doc = json::parse(obs::chrome_trace_json(run.log));
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i" || ph == "C") << ph;
  }
  const std::string jsonl = obs::runlog_to_jsonl(run.log);
  EXPECT_EQ(obs::runlog_to_jsonl(obs::runlog_from_jsonl(jsonl)), jsonl);
}

// The sweep-wide observer-effect guarantee: tracing changes nothing about
// the run itself.
TEST_P(InstrumentationSweep, ObserverEffectIsZero) {
  const SweepCase& c = GetParam();
  const TracedRun traced = traced_run(c);
  rt::SimulatedOptions options;
  if (c.stage_error_prob > 0.0) {
    options.faults.stage_error_prob = c.stage_error_prob;
    options.faults.seed = 7;
    options.recovery.kind = res::RecoveryKind::kRetry;
  }
  rt::EnsembleSpec spec = wl::paper_config(c.config).spec;
  spec.n_steps = c.stage_error_prob > 0.0 ? 8 : 7;
  const rt::SimulatedExecutor exec(wl::cori_like_platform(), options);
  const rt::ExecutionResult untraced = exec.run(spec);
  EXPECT_EQ(met::trace_to_text(untraced.trace),
            met::trace_to_text(traced.result.trace));
  EXPECT_EQ(untraced.events_processed, traced.result.events_processed);
  EXPECT_TRUE(untraced.counters.empty());
}

// -- scheduler instrumentation, swept over thread counts ---------------------

class SchedulerSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (!obs::kCompiledIn) {
      GTEST_SKIP() << "observability compiled out (WFENS_OBS=OFF)";
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Threads, SchedulerSweep, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST_P(SchedulerSweep, BatchEvaluationEmitsSchedulerTracks) {
  const int threads = GetParam();
  const sched::EnsembleShape shape = sched::EnsembleShape::paper_like(2, 1);
  const std::vector<sched::Assignment> candidates =
      sched::enumerate_assignments(sched::slot_count(shape), 3);
  ASSERT_FALSE(candidates.empty());

  sched::BatchEvaluator evaluator(wl::cori_like_platform(), threads);
  obs::Recorder recorder;
  obs::Session session(recorder);
  const auto scores = evaluator.score_assignments(shape, candidates, 4);
  const obs::RunLog log = recorder.take();

  ASSERT_EQ(scores.size(), candidates.size());
  const std::vector<obs::Event> batch = log.spans_on("scheduler");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(log.str(batch[0].name), "batch");

  // Candidate/evaluation counters mirror the evaluator's own accounting.
  double candidates_counted = 0.0, evaluations_counted = 0.0;
  bool saw_worker_busy = false;
  for (const obs::CounterValue& c : log.counters) {
    if (c.name == "sched.candidates") candidates_counted = c.value;
    if (c.name == "sched.evaluations") evaluations_counted = c.value;
    if (c.name.rfind("sched.w", 0) == 0) saw_worker_busy = true;
  }
  // sched.evaluations counts items that entered the parallel phase
  // (feasible or not); the evaluator's own count covers only feasible
  // replays, so it is bounded by the counter.
  std::size_t fresh = 0;
  for (const auto& s : scores) {
    if (!s.cached) ++fresh;
  }
  EXPECT_EQ(candidates_counted, static_cast<double>(candidates.size()));
  EXPECT_EQ(evaluations_counted, static_cast<double>(fresh));
  EXPECT_LE(evaluator.evaluations(), fresh);
  EXPECT_GT(evaluator.evaluations(), 0u);
  EXPECT_TRUE(saw_worker_busy);

  // One per-worker evaluate span per parallel-phase item.
  std::size_t evaluate_spans = 0;
  for (const std::string& track : log.tracks()) {
    if (track.rfind("sched/w", 0) == 0) {
      evaluate_spans += log.spans_on(track).size();
    }
  }
  EXPECT_EQ(evaluate_spans, fresh);
}

TEST_P(SchedulerSweep, MemoHitsAreCountedOnRepeatBatches) {
  const int threads = GetParam();
  const sched::EnsembleShape shape = sched::EnsembleShape::paper_like(2, 1);
  const std::vector<sched::Assignment> candidates =
      sched::enumerate_assignments(sched::slot_count(shape), 3);

  sched::BatchEvaluator evaluator(wl::cori_like_platform(), threads);
  (void)evaluator.score_assignments(shape, candidates, 4);

  obs::Recorder recorder;
  obs::Session session(recorder);
  const auto scores = evaluator.score_assignments(shape, candidates, 4);
  const obs::RunLog log = recorder.take();

  // Second pass: everything memoized, nothing fresh.
  for (const auto& s : scores) {
    if (s.feasible) {
      EXPECT_TRUE(s.cached);
    }
  }
  double memo_hits = 0.0;
  for (const obs::CounterValue& c : log.counters) {
    if (c.name == "sched.memo_hits") memo_hits = c.value;
  }
  EXPECT_GT(memo_hits, 0.0);
}

TEST(SchedulerThreads, ScoresAreThreadCountInvariantWhileTraced) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (WFENS_OBS=OFF)";
  }
  const sched::EnsembleShape shape = sched::EnsembleShape::paper_like(2, 1);
  const std::vector<sched::Assignment> candidates =
      sched::enumerate_assignments(sched::slot_count(shape), 3);
  std::vector<std::vector<double>> objectives;
  for (const int threads : {1, 2, 4}) {
    sched::BatchEvaluator evaluator(wl::cori_like_platform(), threads);
    obs::Recorder recorder;
    obs::Session session(recorder);
    const auto scores = evaluator.score_assignments(shape, candidates, 4);
    std::vector<double> row;
    for (const auto& s : scores) {
      row.push_back(s.feasible ? s.eval.objective : -1.0);
    }
    objectives.push_back(std::move(row));
  }
  EXPECT_EQ(objectives[0], objectives[1]);
  EXPECT_EQ(objectives[0], objectives[2]);
}

}  // namespace
}  // namespace wfe
