// Recorder + Session semantics: sequence ids, string interning, session
// exclusivity, runtime toggle, RunLog accessors.
#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace wfe::obs {
namespace {

TEST(Recorder, SequenceIdsAreMonotonicInEmissionOrder) {
  Recorder rec;
  rec.span("t", "a", 0.0, 1.0);
  rec.instant("t", "b", 1.0);
  rec.add_counter("n", 1.5, 2.0);
  rec.set_counter("g", 2.0, 7.0);
  const RunLog log = rec.take();
  ASSERT_EQ(log.size(), 4u);
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].seq, i);
  }
  EXPECT_EQ(log.events[0].kind, EventKind::kSpan);
  EXPECT_EQ(log.events[1].kind, EventKind::kInstant);
  EXPECT_EQ(log.events[2].kind, EventKind::kCounter);
  EXPECT_EQ(log.events[3].kind, EventKind::kCounter);
}

TEST(Recorder, InstantHasEqualStartAndEnd) {
  Recorder rec;
  rec.instant("t", "tick", 3.25);
  const RunLog log = rec.take();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events[0].start, 3.25);
  EXPECT_EQ(log.events[0].end, 3.25);
  EXPECT_EQ(log.events[0].duration(), 0.0);
}

TEST(Recorder, StringsAreInternedOnce) {
  Recorder rec;
  rec.span("sim0", "S", 0.0, 1.0);
  rec.span("sim0", "S", 1.0, 2.0);
  rec.span("sim0", "W", 2.0, 3.0);
  const RunLog log = rec.take();
  // "sim0", "S", "W" — three distinct strings however many events.
  EXPECT_EQ(log.strings.size(), 3u);
  EXPECT_EQ(log.events[0].track, log.events[1].track);
  EXPECT_EQ(log.events[0].name, log.events[1].name);
  EXPECT_NE(log.events[1].name, log.events[2].name);
  EXPECT_EQ(log.str(log.events[2].name), "W");
}

TEST(Recorder, CounterEventsCarryPostUpdateTotals) {
  Recorder rec;
  rec.add_counter("n", 0.0, 3.0);
  rec.add_counter("n", 1.0, 2.0);
  rec.set_counter("g", 2.0, 9.0);
  const RunLog samples_log = rec.take();
  const std::vector<Event> n = samples_log.samples_of("n");
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].value, 3.0);
  EXPECT_EQ(n[1].value, 5.0);  // cumulative, not the delta
  const std::vector<Event> g = samples_log.samples_of("g");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].value, 9.0);
}

TEST(Recorder, TakeDrainsAndLeavesRecorderReusable) {
  Recorder rec;
  rec.span("t", "a", 0.0, 1.0);
  rec.add_counter("n", 0.5, 1.0);
  const RunLog first = rec.take();
  EXPECT_EQ(first.size(), 2u);
  ASSERT_EQ(first.counters.size(), 1u);
  EXPECT_EQ(first.counters[0].value, 1.0);

  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_EQ(rec.counters().size(), 0u);  // registry cleared with the log
  rec.span("t", "b", 2.0, 3.0);
  const RunLog second = rec.take();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.events[0].seq, 0u);  // sequence restarts per log
  EXPECT_EQ(second.str(second.events[0].name), "b");
}

TEST(Recorder, TakeAttachesCounterSnapshot) {
  Recorder rec;
  rec.add_counter("b.mono", 0.0, 4.0);
  rec.set_counter("a.gauge", 0.0, 2.5);
  const RunLog log = rec.take();
  ASSERT_EQ(log.counters.size(), 2u);
  EXPECT_EQ(log.counters[0].name, "a.gauge");
  EXPECT_EQ(log.counters[0].kind, CounterKind::kGauge);
  EXPECT_EQ(log.counters[1].name, "b.mono");
  EXPECT_EQ(log.counters[1].value, 4.0);
}

TEST(Recorder, NowIsMonotonicNonNegative) {
  Recorder rec;
  const double a = rec.now_s();
  const double b = rec.now_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Recorder, ConcurrentEmissionKeepsSequenceDense) {
  Recorder rec;
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kEach; ++i) {
        rec.span("track" + std::to_string(t), "s", i, i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const RunLog log = rec.take();
  ASSERT_EQ(log.size(), std::size_t{kThreads * kEach});
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].seq, i);  // dense: no gaps, no duplicates
  }
}

TEST(RunLog, TracksAreSortedUniqueAndSkipCounters) {
  Recorder rec;
  rec.span("zeta", "s", 0.0, 1.0);
  rec.instant("alpha", "i", 0.5);
  rec.span("zeta", "s", 1.0, 2.0);
  rec.add_counter("not.a.track", 0.0, 1.0);
  const RunLog log = rec.take();
  const std::vector<std::string> tracks = log.tracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0], "alpha");
  EXPECT_EQ(tracks[1], "zeta");
}

TEST(RunLog, SpansOnFiltersByTrackAndKind) {
  Recorder rec;
  rec.span("a", "x", 0.0, 1.0);
  rec.instant("a", "y", 0.5);  // instants are not spans
  rec.span("b", "x", 0.0, 1.0);
  rec.span("a", "z", 1.0, 2.0);
  const RunLog log = rec.take();
  const std::vector<Event> spans = log.spans_on("a");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(log.str(spans[0].name), "x");
  EXPECT_EQ(log.str(spans[1].name), "z");
  EXPECT_TRUE(log.spans_on("missing").empty());
}

TEST(Session, InstallsAndUninstallsCurrentRecorder) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  EXPECT_EQ(current(), nullptr);
  {
    Recorder rec;
    Session session(rec);
    EXPECT_EQ(current(), &rec);
    EXPECT_TRUE(enabled());
  }
  EXPECT_EQ(current(), nullptr);
  EXPECT_FALSE(enabled());
}

TEST(Session, NestingThrows) {
  Recorder a, b;
  Session outer(a);
  EXPECT_THROW(Session inner(b), InvalidArgument);
  EXPECT_EQ(current(), &a);  // failed install leaves the outer session alone
}

TEST(Session, FreeFunctionsFeedTheInstalledRecorder) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Recorder rec;
  {
    Session session(rec);
    span("t", "s", 0.0, 1.0);
    instant("t", "i", 0.5);
    add_counter("n", 1.0, 2.0);
    set_counter("g", 1.0, 3.0);
  }
  // After the session ends, emission is inert again.
  span("t", "late", 2.0, 3.0);
  const RunLog log = rec.take();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_TRUE(log.spans_on("t").size() == 1u);
}

TEST(Session, RuntimeToggleSuppressesEmission) {
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  Recorder rec;
  Session session(rec);
  set_runtime_enabled(false);
  EXPECT_FALSE(enabled());
  span("t", "hidden", 0.0, 1.0);
  set_runtime_enabled(true);
  EXPECT_TRUE(enabled());
  span("t", "visible", 1.0, 2.0);
  const RunLog log = rec.take();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.str(log.events[0].name), "visible");
}

TEST(Session, NowWithoutSessionIsZero) {
  EXPECT_EQ(now_s(), 0.0);
  Recorder rec;
  Session session(rec);
  EXPECT_GE(now_s(), 0.0);
}

TEST(Obs, CompiledInMatchesBuildConfiguration) {
#if defined(WFENS_OBS_DISABLED)
  EXPECT_FALSE(kCompiledIn);
#else
  EXPECT_TRUE(kCompiledIn);
#endif
}

}  // namespace
}  // namespace wfe::obs
