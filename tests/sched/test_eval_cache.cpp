// EvalCache: the process-wide, disk-persistable evaluation store behind
// BatchEvaluator's local memo (the campaign driver's cross-unit and
// cross-run dedup tier).
#include "sched/eval_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wfens_eval_cache_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

using EvalCacheFiles = TempDir;

CachedEval sample(double objective) {
  CachedEval e;
  e.feasible = true;
  e.eval.objective = objective;
  e.eval.ensemble_makespan = objective * 2.0 + 0.125;
  e.eval.min_member_efficiency = 0.7310585786300049;  // full-mantissa value
  e.eval.nodes_used = 3;
  return e;
}

TEST(EvalCache, LookupMissesOnEmptyAndHitsAfterInsert) {
  EvalCache cache;
  CachedEval out;
  EXPECT_FALSE(cache.lookup(42, &out));
  cache.insert(42, sample(1.5));
  ASSERT_TRUE(cache.lookup(42, &out));
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.eval.objective, 1.5);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(EvalCache, InsertOverwrites) {
  EvalCache cache;
  cache.insert(7, sample(1.0));
  cache.insert(7, sample(2.0));
  CachedEval out;
  ASSERT_TRUE(cache.lookup(7, &out));
  EXPECT_EQ(out.eval.objective, 2.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(EvalCacheFiles, SaveLoadRoundTripsBitExactly) {
  EvalCache cache;
  cache.insert(0x1234, sample(0.1));  // 0.1: not exactly representable
  CachedEval infeasible;
  infeasible.feasible = false;
  cache.insert(0xffffffffffffffffull, infeasible);
  EXPECT_EQ(cache.save(path("c")), 2u);

  EvalCache loaded;
  EXPECT_EQ(loaded.load(path("c")), 2u);
  EXPECT_EQ(loaded.size(), 2u);
  CachedEval out;
  ASSERT_TRUE(loaded.lookup(0x1234, &out));
  EXPECT_TRUE(out.feasible);
  // Bit-exact doubles: the hex-float format must not lose mantissa bits.
  EXPECT_EQ(out.eval.objective, 0.1);
  EXPECT_EQ(out.eval.ensemble_makespan, 0.1 * 2.0 + 0.125);
  EXPECT_EQ(out.eval.min_member_efficiency, 0.7310585786300049);
  EXPECT_EQ(out.eval.nodes_used, 3);
  ASSERT_TRUE(loaded.lookup(0xffffffffffffffffull, &out));
  EXPECT_FALSE(out.feasible);
}

TEST_F(EvalCacheFiles, SavedBytesAreDeterministic) {
  // Same entries inserted in different orders must serialize identically
  // (sorted by key): campaign runs diff cache files across machines.
  EvalCache a;
  a.insert(3, sample(0.3));
  a.insert(1, sample(0.1));
  a.insert(2, sample(0.2));
  EvalCache b;
  b.insert(2, sample(0.2));
  b.insert(3, sample(0.3));
  b.insert(1, sample(0.1));
  a.save(path("a"));
  b.save(path("b"));
  std::ifstream fa(path("a")), fb(path("b"));
  const std::string ba((std::istreambuf_iterator<char>(fa)), {});
  const std::string bb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(ba, bb);
  EXPECT_FALSE(ba.empty());
}

TEST_F(EvalCacheFiles, LoadMergesIntoExistingEntries) {
  EvalCache first;
  first.insert(1, sample(0.1));
  first.save(path("c"));
  EvalCache second;
  second.insert(2, sample(0.2));
  EXPECT_EQ(second.load(path("c")), 1u);
  EXPECT_EQ(second.size(), 2u);
  CachedEval out;
  EXPECT_TRUE(second.lookup(1, &out));
  EXPECT_TRUE(second.lookup(2, &out));
}

TEST_F(EvalCacheFiles, MissingFileLoadsAsEmpty) {
  EvalCache cache;
  EXPECT_EQ(cache.load(path("nonexistent")), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(EvalCacheFiles, RejectsForeignAndMalformedFiles) {
  {
    std::ofstream out(path("foreign"));
    out << "not-a-cache 1\n";
  }
  {
    std::ofstream out(path("torn"));
    out << "wfens-eval-cache 1\ndeadbeef 1\n";  // truncated line
  }
  EvalCache cache;
  EXPECT_THROW(cache.load(path("foreign")), SerializationError);
  EXPECT_THROW(cache.load(path("torn")), SerializationError);
}

TEST_F(EvalCacheFiles, SaveLeavesNoTempFileBehind) {
  EvalCache cache;
  cache.insert(1, sample(0.5));
  cache.save(path("c"));
  EXPECT_TRUE(std::filesystem::exists(path("c")));
  EXPECT_FALSE(std::filesystem::exists(path("c") + ".tmp"));
}

TEST(EvalCache, DefaultPathHonorsEnvOverride) {
  // WFENS_CACHE wins over $HOME; restore the environment afterwards.
  const char* old = std::getenv("WFENS_CACHE");
  const std::string saved = old ? old : "";
  ::setenv("WFENS_CACHE", "/tmp/custom.cache", 1);
  EXPECT_EQ(EvalCache::default_path(), "/tmp/custom.cache");
  if (old) {
    ::setenv("WFENS_CACHE", saved.c_str(), 1);
  } else {
    ::unsetenv("WFENS_CACHE");
  }
  // Without the override the path is rooted somewhere stable, not empty.
  EXPECT_FALSE(EvalCache::default_path().empty());
}

TEST(EvalCache, ConcurrentInsertLookupIsSafe) {
  // The store is shared across scoring threads in a campaign; hammer it
  // from several writers+readers (TSan covers this via the concurrency
  // label).
  EvalCache cache;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      CachedEval out;
      for (int i = 0; i < 500; ++i) {
        const auto key = static_cast<std::uint64_t>(t * 1000 + i);
        cache.insert(key, sample(static_cast<double>(i)));
        cache.lookup(key, &out);
        cache.lookup(static_cast<std::uint64_t>(i), &out);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), 2000u);
}

// ------------------------------------------------- BatchEvaluator two-tier

TEST(EvalCacheBatch, WarmSharedCacheSkipsAllSimulations) {
  const auto platform = wl::cori_like_platform();
  const auto shape = EnsembleShape::paper_like(2, 1);
  const auto assignments = enumerate_assignments(slot_count(shape), 3);

  EvalCache shared;
  BatchEvaluator cold(platform, /*threads=*/2);
  cold.attach_shared_cache(&shared);
  const auto first = cold.score_assignments(shape, assignments);
  EXPECT_GT(cold.evaluations(), 0u);
  // Every unique miss is published, including infeasible placements
  // (cached without a simulation), so the store is at least as big as the
  // simulation count.
  EXPECT_GE(shared.size(), cold.evaluations());

  // A fresh evaluator with the warm store must not simulate anything.
  BatchEvaluator warm(platform, /*threads=*/2);
  warm.attach_shared_cache(&shared);
  const auto second = warm.score_assignments(shape, assignments);
  EXPECT_EQ(warm.evaluations(), 0u);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].feasible, first[i].feasible);
    EXPECT_EQ(second[i].eval.objective, first[i].eval.objective) << i;
    EXPECT_TRUE(second[i].cached);
  }
}

TEST(EvalCacheBatch, AttachmentDoesNotChangeScores) {
  const auto platform = wl::cori_like_platform();
  const auto shape = EnsembleShape::paper_like(2, 1);
  const auto assignments = enumerate_assignments(slot_count(shape), 3);

  BatchEvaluator plain(platform, /*threads=*/2);
  const auto reference = plain.score_assignments(shape, assignments);

  EvalCache shared;
  BatchEvaluator attached(platform, /*threads=*/2);
  attached.attach_shared_cache(&shared);
  const auto scored = attached.score_assignments(shape, assignments);
  ASSERT_EQ(scored.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(scored[i].feasible, reference[i].feasible);
    EXPECT_EQ(scored[i].eval.objective, reference[i].eval.objective) << i;
  }
}

TEST_F(EvalCacheFiles, PersistedCacheWarmsAFreshProcessStandIn) {
  // Simulate a second campaign run: score, save, "restart" (new cache +
  // new evaluator), load, score again — zero fresh simulations.
  const auto platform = wl::cori_like_platform();
  const auto shape = EnsembleShape::paper_like(1, 1);
  const auto assignments = enumerate_assignments(slot_count(shape), 3);

  {
    EvalCache shared;
    BatchEvaluator run1(platform, /*threads=*/1);
    run1.attach_shared_cache(&shared);
    (void)run1.score_assignments(shape, assignments);
    EXPECT_GT(shared.size(), 0u);
    shared.save(path("c"));
  }
  {
    EvalCache shared;
    EXPECT_GT(shared.load(path("c")), 0u);
    BatchEvaluator run2(platform, /*threads=*/1);
    run2.attach_shared_cache(&shared);
    (void)run2.score_assignments(shape, assignments);
    EXPECT_EQ(run2.evaluations(), 0u) << "disk-warmed cache must serve all";
  }
}

}  // namespace
}  // namespace wfe::sched
