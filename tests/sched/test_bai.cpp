// Adaptive best-arm scheduler (bai-search): determinism contracts, budget
// discipline, and the fresh-replay saving that justifies its existence.
#include "sched/bai.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/spec_io.hpp"
#include "sched/eval_cache.hpp"
#include "sched/evaluator.hpp"
#include "sched/exhaustive.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

plat::PlatformSpec platform() { return wl::cori_like_platform(); }

PlanOptions stochastic_options(int threads = 1) {
  PlanOptions options;
  options.threads = threads;
  options.jitter_cv = 0.1;
  options.probe_samples = 8;
  return options;
}

// The hard gate from the design: on deterministic probe scenarios
// (jitter_cv == 0) bai-search must return a placement BIT-IDENTICAL to
// exhaustive enumeration — the adaptive search degenerates to one probe
// per arm with exhaustive's exact memo keys.
TEST(BaiSearch, DeterministicPathBitIdenticalToExhaustive) {
  struct Case {
    int members, analyses, pool;
  };
  for (const Case& c :
       std::vector<Case>{{2, 1, 3}, {2, 2, 3}, {3, 1, 4}, {2, 2, 4}}) {
    const auto shape = EnsembleShape::paper_like(c.members, c.analyses);
    const Schedule bai =
        BaiSearch().plan(shape, platform(), {c.pool});
    const Schedule exhaustive =
        Exhaustive().plan(shape, platform(), {c.pool});
    EXPECT_EQ(rt::spec_to_text(bai.spec), rt::spec_to_text(exhaustive.spec))
        << c.members << "x" << c.analyses << "/pool" << c.pool;
    EXPECT_EQ(bai.scheduler, "bai-search");
    EXPECT_EQ(bai.samples, bai.evaluations + bai.cache_hits);
  }
}

// probe_samples > 1 with jitter off is still the deterministic path: every
// draw would be identical, so the search must not multiply the cost.
TEST(BaiSearch, DeterministicProbesIgnoreProbeSamples) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  PlanOptions options;
  options.probe_samples = 8;
  const Schedule a = BaiSearch().plan(shape, platform(), {3}, options);
  const Schedule b = BaiSearch().plan(shape, platform(), {3});
  EXPECT_EQ(rt::spec_to_text(a.spec), rt::spec_to_text(b.spec));
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// Deterministic probes share memo keys with exhaustive, so a shared
// EvalCache warmed by one scheduler makes the other plan for free.
TEST(BaiSearch, SharesCacheEntriesWithExhaustive) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  EvalCache cache;
  PlanOptions options;
  options.shared_cache = &cache;
  const Schedule warmup = Exhaustive().plan(shape, platform(), {3}, options);
  EXPECT_GT(warmup.evaluations, 0u);
  const Schedule bai = BaiSearch().plan(shape, platform(), {3}, options);
  EXPECT_EQ(bai.evaluations, 0u);
  EXPECT_GT(bai.shared_hits, 0u);
  EXPECT_EQ(rt::spec_to_text(bai.spec), rt::spec_to_text(warmup.spec));
}

// Stochastic probes: the winning placement (and every cost counter) must
// be byte-identical across reruns and planner thread counts — the LUCB
// trajectory is driven by seeded draws, not scheduling races.
TEST(BaiSearch, StochasticWinnerByteStableAcrossRerunsAndThreads) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  const Schedule reference =
      BaiSearch().plan(shape, platform(), {3}, stochastic_options(1));
  ASSERT_GT(reference.samples, 0u);
  for (const int threads : {1, 2, 8}) {
    for (int rep = 0; rep < 2; ++rep) {
      const Schedule schedule = BaiSearch().plan(
          shape, platform(), {3}, stochastic_options(threads));
      EXPECT_EQ(rt::spec_to_text(schedule.spec),
                rt::spec_to_text(reference.spec))
          << "threads=" << threads << " rep=" << rep;
      EXPECT_EQ(schedule.samples, reference.samples)
          << "threads=" << threads;
      EXPECT_EQ(schedule.evaluations, reference.evaluations)
          << "threads=" << threads;
    }
  }
}

TEST(BaiSearch, RespectsMaxSamplesBudget) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  PlanOptions options = stochastic_options();
  options.max_samples = 20;
  const Schedule schedule = BaiSearch().plan(shape, platform(), {3}, options);
  EXPECT_LE(schedule.samples, 20u);
  EXPECT_NO_THROW(schedule.spec.validate(platform()));

  // A budget below one-sample-per-arm is floored, never starved: the
  // search still probes every arm once and returns a validated placement.
  options.max_samples = 1;
  const Schedule floored =
      BaiSearch().plan(shape, platform(), {3}, options);
  EXPECT_GT(floored.samples, 1u);
  EXPECT_NO_THROW(floored.spec.validate(platform()));
}

// The headline property: on a stochastic scenario the adaptive search
// reaches the fixed-budget winner's quality with FEWER fresh replays than
// fixed-budget exhaustive sampling spends on the same candidate set.
TEST(BaiSearch, SavesFreshReplaysVsFixedBudgetAtEqualQuality) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  const Schedule bai =
      BaiSearch().plan(shape, platform(), {3}, stochastic_options());
  const Schedule fixed =
      Exhaustive().plan(shape, platform(), {3}, stochastic_options());
  EXPECT_LT(bai.evaluations, fixed.evaluations);
  EXPECT_LT(bai.samples, fixed.samples);

  Evaluator evaluator(platform());
  const double f_bai = evaluator.score(bai.spec).objective;
  const double f_fixed = evaluator.score(fixed.spec).objective;
  EXPECT_GE(f_bai + 1e-12, f_fixed);
}

TEST(BaiSearch, CapsComponentCount) {
  EXPECT_THROW((void)BaiSearch().plan(EnsembleShape::paper_like(7, 1),
                                      platform(), {3}),
               InvalidArgument);
}

TEST(BaiSearch, ThrowsWhenNothingFitsStochastic) {
  auto small = platform();
  small.node.cores = 8;  // the 16-core simulation can never fit
  EXPECT_THROW((void)BaiSearch().plan(EnsembleShape::paper_like(1, 1), small,
                                      {2}, stochastic_options()),
               SpecError);
}

TEST(BaiSearch, RejectsZeroProbeSamples) {
  PlanOptions options;
  options.probe_samples = 0;
  EXPECT_THROW((void)BaiSearch().plan(EnsembleShape::paper_like(2, 1),
                                      platform(), {3}, options),
               InvalidArgument);
}

}  // namespace
}  // namespace wfe::sched
