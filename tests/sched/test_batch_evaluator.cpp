// Parallel placement search: candidate helpers, the memoizing batch
// evaluator, and thread-count invariance of the schedulers built on them.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/candidates.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "sched/greedy_refine.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

plat::PlatformSpec platform() { return wl::cori_like_platform(); }

/// Flatten a placed spec's node sets into a comparable signature.
std::string placement_signature(const rt::EnsembleSpec& spec) {
  std::ostringstream out;
  for (const auto& m : spec.members) {
    out << "s:";
    for (int n : m.sim.nodes) out << n << ",";
    for (const auto& a : m.analyses) {
      out << "a:";
      for (int n : a.nodes) out << n << ",";
    }
    out << "|";
  }
  return out.str();
}

// ---------------------------------------------------------------- candidates

TEST(Candidates, CanonicalRelabelsByFirstAppearance) {
  EXPECT_EQ(canonical({2, 2, 0, 1}, 3), (Assignment{0, 0, 1, 2}));
  EXPECT_EQ(canonical({0, 1, 0, 2}, 3), (Assignment{0, 1, 0, 2}));
  EXPECT_EQ(canonical({5, 5, 5}, 6), (Assignment{0, 0, 0}));
}

TEST(Candidates, CanonicalIsIdempotent) {
  const Assignment a = canonical({3, 1, 3, 0, 1}, 4);
  EXPECT_EQ(canonical(a, 4), a);
}

TEST(Candidates, EnumerationIsCanonicalDedupedAndLexOrdered) {
  // 3 slots over a pool of 3: Bell number B(3) = 5 distinct partitions.
  const auto all = enumerate_assignments(3, 3);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(canonical(all[i], 3), all[i]);
    if (i > 0) EXPECT_LT(all[i - 1], all[i]);  // strictly lex-increasing
  }
  EXPECT_EQ(all.front(), (Assignment{0, 0, 0}));
  EXPECT_EQ(all.back(), (Assignment{0, 1, 2}));
}

TEST(Candidates, NeighborsAreSingleSlotMoves) {
  const auto neighbors = neighbor_assignments({0, 1}, 3);
  // Each of the 2 slots can move to 2 other pool nodes; canonicalized and
  // with the identity dropped, the distinct outcomes are {0,0} and {0,1}
  // variants. Every neighbor differs from the start in exactly one slot
  // (up to relabeling) and none equals the start.
  ASSERT_FALSE(neighbors.empty());
  for (const auto& n : neighbors) {
    EXPECT_EQ(n, canonical(n, 3));
    EXPECT_NE(n, (Assignment{0, 1}));
  }
}

TEST(Candidates, PickWinnerPrefersObjectiveThenLexOrder) {
  const std::vector<Assignment> cands = {{0, 1, 1}, {0, 0, 1}, {0, 1, 2}};
  // Tie on objective between index 1 and 2 -> lex-smaller {0,0,1} wins.
  std::vector<ScoredCandidate> scored = {
      {true, 1.0}, {true, 2.0}, {true, 2.0}};
  auto w = pick_winner(scored, cands);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 1u);
  // Infeasible candidates never win.
  scored[1].feasible = false;
  w = pick_winner(scored, cands);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2u);
  // All infeasible -> no winner.
  auto none = pick_winner({{false, 0.0}}, {{0}});
  EXPECT_FALSE(none.has_value());
}

// ----------------------------------------------------------- batch evaluator

TEST(BatchEvaluator, ScoresMatchTheSequentialEvaluator) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  const auto assignments = enumerate_assignments(slot_count(shape), 3);
  BatchEvaluator batch(platform(), /*threads=*/4);
  const auto scores = batch.score_assignments(shape, assignments);
  ASSERT_EQ(scores.size(), assignments.size());

  Evaluator reference(platform());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    rt::EnsembleSpec spec = place(shape, assignments[i]);
    bool feasible = true;
    try {
      spec.validate(platform());
    } catch (const SpecError&) {
      feasible = false;
    }
    ASSERT_EQ(scores[i].feasible, feasible) << "candidate " << i;
    if (feasible) {
      EXPECT_DOUBLE_EQ(scores[i].eval.objective,
                       reference.score(spec).objective)
          << "candidate " << i;
    }
  }
}

TEST(BatchEvaluator, MemoCacheServesRepeatsWithoutNewSimulations) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  const auto assignments = enumerate_assignments(slot_count(shape), 3);
  BatchEvaluator batch(platform(), /*threads=*/2);

  const auto first = batch.score_assignments(shape, assignments);
  const std::size_t sims = batch.evaluations();
  EXPECT_GT(sims, 0u);
  EXPECT_EQ(batch.cache_hits(), 0u);  // all distinct, all fresh

  const auto second = batch.score_assignments(shape, assignments);
  EXPECT_EQ(batch.evaluations(), sims);  // not one more simulation
  EXPECT_EQ(batch.cache_hits(), assignments.size());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(second[i].cached);
    EXPECT_EQ(second[i].feasible, first[i].feasible);
    if (first[i].feasible) {
      EXPECT_DOUBLE_EQ(second[i].eval.objective, first[i].eval.objective);
    }
  }
}

TEST(BatchEvaluator, WithinBatchDuplicatesSimulateOnce) {
  const auto shape = EnsembleShape::paper_like(1, 1);
  const Assignment a = {0, 0};
  BatchEvaluator batch(platform(), /*threads=*/2);
  const auto scores = batch.score_assignments(shape, {a, a, a});
  EXPECT_EQ(batch.evaluations(), 1u);
  EXPECT_EQ(batch.cache_hits(), 2u);
  EXPECT_DOUBLE_EQ(scores[1].eval.objective, scores[0].eval.objective);
  EXPECT_DOUBLE_EQ(scores[2].eval.objective, scores[0].eval.objective);
}

TEST(BatchEvaluator, CacheKeyDistinguishesProbeLengths) {
  const auto shape = EnsembleShape::paper_like(1, 1);
  BatchEvaluator batch(platform(), /*threads=*/1);
  (void)batch.score_assignments(shape, {{0, 0}}, /*probe_steps=*/6);
  (void)batch.score_assignments(shape, {{0, 0}}, /*probe_steps=*/8);
  EXPECT_EQ(batch.evaluations(), 2u);  // different probes: both simulated
  EXPECT_EQ(batch.cache_hits(), 0u);
}

TEST(BatchEvaluator, CountsEngineEvents) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  BatchEvaluator batch(platform(), /*threads=*/2);
  (void)batch.score_assignments(shape,
                                enumerate_assignments(slot_count(shape), 3));
  EXPECT_GT(batch.events_processed(), 0u);
}

// ------------------------------------------------- thread-count invariance

TEST(ParallelEquivalence, ExhaustiveIsThreadCountInvariant) {
  for (const auto& shape :
       {EnsembleShape::paper_like(2, 1), EnsembleShape::paper_like(2, 2)}) {
    const auto reference = Exhaustive().plan(shape, platform(), {3},
                                             PlanOptions{.threads = 1});
    for (int threads : {2, 8}) {
      const auto parallel = Exhaustive().plan(shape, platform(), {3},
                                              PlanOptions{.threads = threads});
      EXPECT_EQ(placement_signature(parallel.spec),
                placement_signature(reference.spec))
          << "threads=" << threads;
      EXPECT_EQ(parallel.evaluations, reference.evaluations)
          << "threads=" << threads;
      EXPECT_EQ(parallel.cache_hits, reference.cache_hits)
          << "threads=" << threads;
    }
  }
}

TEST(ParallelEquivalence, GreedyRefineIsThreadCountInvariant) {
  const auto shape = EnsembleShape::paper_like(2, 2);
  const auto reference =
      GreedyRefine().plan(shape, platform(), {3}, PlanOptions{.threads = 1});
  for (int threads : {2, 8}) {
    const auto parallel = GreedyRefine().plan(shape, platform(), {3},
                                              PlanOptions{.threads = threads});
    EXPECT_EQ(placement_signature(parallel.spec),
              placement_signature(reference.spec))
        << "threads=" << threads;
    EXPECT_EQ(parallel.evaluations, reference.evaluations)
        << "threads=" << threads;
    EXPECT_EQ(parallel.cache_hits, reference.cache_hits)
        << "threads=" << threads;
  }
}

TEST(GreedyRefine, NeverWorseThanItsConstructiveSeed) {
  Evaluator evaluator(platform());
  for (const auto& shape :
       {EnsembleShape::paper_like(2, 1), EnsembleShape::paper_like(4, 1)}) {
    const auto refined = GreedyRefine().plan(shape, platform(), {3});
    const auto seed = GreedyColocation().plan(shape, platform(), {3});
    EXPECT_GE(evaluator.score(refined.spec).objective + 1e-12,
              evaluator.score(seed.spec).objective);
    EXPECT_GT(refined.evaluations, 0u);
  }
}

TEST(GreedyRefine, RefinementRoundsHitTheMemoCache) {
  // On the Table 2 shape the hill-climb takes at least one improving step,
  // and consecutive rounds' neighborhoods overlap (moving the slot back
  // reproduces the previous incumbent) — those re-visits must be served
  // from the memo-cache, not re-simulated.
  const auto schedule =
      GreedyRefine().plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  EXPECT_GT(schedule.cache_hits, 0u);
}

TEST(GreedyRefine, MatchesExhaustiveOnThePaperShape) {
  // On the small Table 2 shape the hill-climb lands on the global optimum.
  Evaluator evaluator(platform());
  const auto shape = EnsembleShape::paper_like(2, 1);
  const auto refined = GreedyRefine().plan(shape, platform(), {3});
  const auto oracle = Exhaustive().plan(shape, platform(), {3});
  EXPECT_NEAR(evaluator.score(refined.spec).objective,
              evaluator.score(oracle.spec).objective, 1e-12);
}

TEST(Factory, BuildsGreedyRefine) {
  const auto schedule = make_scheduler("greedy-refine")
                            ->plan(EnsembleShape::paper_like(2, 1), platform(),
                                   {3});
  EXPECT_EQ(schedule.scheduler, "greedy-refine");
  EXPECT_GT(schedule.evaluations, 0u);
}

}  // namespace
}  // namespace wfe::sched
