// Scheduler library tests: shapes, placement helper, factory.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

TEST(EnsembleShape, PaperLikeShape) {
  const auto shape = EnsembleShape::paper_like(2, 2, 10);
  EXPECT_EQ(shape.members.size(), 2u);
  EXPECT_EQ(shape.members[0].analyses.size(), 2u);
  EXPECT_EQ(shape.n_steps, 10u);
  EXPECT_EQ(shape.members[0].sim.cores, 16);
  EXPECT_EQ(shape.members[0].analyses[0].cores, 8);
}

TEST(EnsembleShape, RejectsDegenerate) {
  EXPECT_THROW((void)EnsembleShape::paper_like(0, 1), InvalidArgument);
  EXPECT_THROW((void)EnsembleShape::paper_like(1, 0), InvalidArgument);
}

TEST(Place, BuildsSpecInSlotOrder) {
  const auto shape = EnsembleShape::paper_like(2, 1);
  const rt::EnsembleSpec spec = place(shape, {0, 0, 1, 2});
  ASSERT_EQ(spec.members.size(), 2u);
  EXPECT_EQ(spec.members[0].sim.nodes, (std::set<int>{0}));
  EXPECT_EQ(spec.members[0].analyses[0].nodes, (std::set<int>{0}));
  EXPECT_EQ(spec.members[1].sim.nodes, (std::set<int>{1}));
  EXPECT_EQ(spec.members[1].analyses[0].nodes, (std::set<int>{2}));
}

TEST(Place, RejectsWrongSlotCount) {
  const auto shape = EnsembleShape::paper_like(1, 1);
  EXPECT_THROW((void)place(shape, {0}), InvalidArgument);
  EXPECT_THROW((void)place(shape, {0, 1, 2}), InvalidArgument);
}

TEST(Factory, KnowsAllSchedulers) {
  for (const char* name : {"greedy-colocate", "greedy-refine", "exhaustive",
                           "bai-search", "round-robin", "random"}) {
    const auto s = make_scheduler(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_THROW((void)make_scheduler("genetic"), InvalidArgument);
}

class AllSchedulers : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchedulers, ProducesValidatedPaperShapePlacement) {
  const auto platform = wl::cori_like_platform();
  const auto shape = EnsembleShape::paper_like(2, 1);
  const auto scheduler = make_scheduler(GetParam());
  const Schedule schedule = scheduler->plan(shape, platform, {3});
  EXPECT_NO_THROW(schedule.spec.validate(platform));
  EXPECT_EQ(schedule.spec.members.size(), 2u);
  EXPECT_EQ(schedule.scheduler, GetParam());
  EXPECT_EQ(schedule.spec.n_steps, shape.n_steps);
}

TEST_P(AllSchedulers, ThrowsWhenNothingFits) {
  auto platform = wl::cori_like_platform();
  platform.node.cores = 8;  // the 16-core simulation can never fit
  const auto shape = EnsembleShape::paper_like(1, 1);
  const auto scheduler = make_scheduler(GetParam());
  EXPECT_THROW((void)scheduler->plan(shape, platform, {2}), SpecError);
}

TEST_P(AllSchedulers, RespectsNodeBudget) {
  const auto platform = wl::cori_like_platform(8);
  const auto shape = EnsembleShape::paper_like(2, 2);
  const auto scheduler = make_scheduler(GetParam());
  const Schedule schedule = scheduler->plan(shape, platform, {3});
  EXPECT_LE(schedule.spec.total_nodes(), 3);
  for (const auto& m : schedule.spec.members) {
    for (int n : m.sim.nodes) EXPECT_LT(n, 3);
    for (const auto& a : m.analyses) {
      for (int n : a.nodes) EXPECT_LT(n, 3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Everyone, AllSchedulers,
                         ::testing::Values("greedy-colocate", "greedy-refine",
                                           "exhaustive", "bai-search",
                                           "round-robin", "random"));

}  // namespace
}  // namespace wfe::sched
