// Arm-side math of the adaptive best-arm scheduler: streaming moments,
// confidence bounds, and the soundness of the elimination rule — all
// exercised without replaying anything (see arm_stats.hpp).
#include "sched/arm_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::sched {
namespace {

// Two-pass reference moments for the Welford fuzz.
struct TwoPass {
  double mean = 0.0;
  double variance = 0.0;  // unbiased, 0 until two samples
};

TwoPass two_pass(const std::vector<double>& xs) {
  TwoPass out;
  if (xs.empty()) return out;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  out.mean = sum / static_cast<double>(xs.size());
  if (xs.size() < 2) return out;
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - out.mean) * (x - out.mean);
  out.variance = m2 / static_cast<double>(xs.size() - 1);
  return out;
}

TEST(ArmStats, StartsEmpty) {
  const ArmStats stats;
  EXPECT_EQ(stats.n, 0u);
  EXPECT_EQ(stats.mean, 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(ArmStats, SingleSampleHasZeroVariance) {
  ArmStats stats;
  stats.add(3.25);
  EXPECT_EQ(stats.n, 1u);
  EXPECT_EQ(stats.mean, 3.25);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(ArmStats, IdenticalSamplesKeepVarianceNonNegative) {
  ArmStats stats;
  for (int i = 0; i < 100; ++i) stats.add(0.0169);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0169);
  EXPECT_GE(stats.variance(), 0.0);
  EXPECT_NEAR(stats.variance(), 0.0, 1e-30);
}

TEST(ArmStats, RejectsNonFiniteSamples) {
  ArmStats stats;
  EXPECT_THROW(stats.add(std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
  EXPECT_THROW(stats.add(std::numeric_limits<double>::infinity()),
               InvalidArgument);
}

TEST(ArmStats, WelfordMatchesTwoPassReferenceUnderFuzz) {
  // 500 seeded trials over several distributions and magnitudes: the
  // streaming moments must agree with the two-pass reference to tight
  // relative tolerance regardless of sample count or scale.
  for (std::uint64_t trial = 0; trial < 500; ++trial) {
    Xoshiro256 rng(0xA53Fu + trial);
    const std::size_t n = 1 + rng.below(400);
    const double scale = std::pow(10.0, rng.uniform(-6.0, 3.0));
    const int kind = static_cast<int>(rng.below(3));
    std::vector<double> xs;
    xs.reserve(n);
    ArmStats stats;
    for (std::size_t i = 0; i < n; ++i) {
      double x = 0.0;
      if (kind == 0) {
        x = scale * rng.uniform(-1.0, 1.0);
      } else if (kind == 1) {
        x = scale * (1.0 + 0.01 * rng.normal());  // tight cluster
      } else {
        x = scale;  // constant stream
      }
      xs.push_back(x);
      stats.add(x);
    }
    const TwoPass ref = two_pass(xs);
    EXPECT_EQ(stats.n, n);
    EXPECT_NEAR(stats.mean, ref.mean, 1e-10 * (1.0 + std::abs(ref.mean)))
        << "trial " << trial;
    EXPECT_NEAR(stats.variance(), ref.variance,
                1e-8 * (1.0 + ref.variance))
        << "trial " << trial;
  }
}

// Build an ArmStats with a prescribed (n, mean, variance) directly.
ArmStats make_stats(std::uint64_t n, double mean, double variance) {
  ArmStats stats;
  stats.n = n;
  stats.mean = mean;
  stats.m2 = n >= 2 ? variance * static_cast<double>(n - 1) : 0.0;
  return stats;
}

TEST(BoundRadius, RequiresASample) {
  EXPECT_THROW((void)bound_radius(ArmStats{}, 0.1, 1.0), InvalidArgument);
  EXPECT_THROW((void)bound_radius(make_stats(3, 0.0, 1.0), -0.1, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)bound_radius(make_stats(3, 0.0, 1.0), 0.1, -1.0),
               InvalidArgument);
}

TEST(BoundRadius, ZeroNoiseGivesZeroRadius) {
  // The deterministic degenerate case: no variance, no range — one sample
  // pins the arm exactly.
  EXPECT_EQ(bound_radius(make_stats(1, 0.5, 0.0), 0.0, 3.0), 0.0);
  EXPECT_EQ(bound_radius(make_stats(10, 0.5, 0.0), 0.0, 3.0), 0.0);
}

TEST(BoundRadius, ShrinksStrictlyWithSampleCount) {
  // Fixed variance/range/log-term: more samples always tighten the bound
  // (1/sqrt(n) on the variance term, 1/n on the range term). Starts at
  // n = 2 — the variance estimate only exists from the second sample, so
  // the n=1 radius is range-only and deliberately not comparable.
  double prev = std::numeric_limits<double>::infinity();
  for (std::uint64_t n = 2; n <= 64; n *= 2) {
    const double r = bound_radius(make_stats(n, 0.0, 0.04), 0.1, 2.0);
    EXPECT_LT(r, prev) << "n=" << n;
    prev = r;
  }
}

TEST(BoundRadius, GrowsWithRangeAndLogTerm) {
  const ArmStats stats = make_stats(4, 0.0, 0.04);
  EXPECT_LT(bound_radius(stats, 0.1, 2.0), bound_radius(stats, 0.2, 2.0));
  EXPECT_LT(bound_radius(stats, 0.1, 2.0), bound_radius(stats, 0.1, 4.0));
}

TEST(BoundRadius, MatchesTheDocumentedFormula) {
  const ArmStats stats = make_stats(5, 1.0, 0.09);
  const double range = 0.25;
  const double log_term = 3.0;
  const double expected =
      std::sqrt(2.0 * 0.09 * log_term / 5.0) + 3.0 * range / 5.0;
  EXPECT_DOUBLE_EQ(bound_radius(stats, range, log_term), expected);
  EXPECT_DOUBLE_EQ(lower_bound(stats, range, log_term), 1.0 - expected);
  EXPECT_DOUBLE_EQ(upper_bound(stats, range, log_term), 1.0 + expected);
}

TEST(ExplorationLog, MonotonicInSamplesAndArms) {
  EXPECT_DOUBLE_EQ(exploration_log(0, 1), std::log(2.0));
  double prev = 0.0;
  for (std::uint64_t issued = 0; issued < 1000; issued += 37) {
    const double l = exploration_log(issued, 14);
    EXPECT_GT(l, prev);
    prev = l;
  }
  EXPECT_LT(exploration_log(100, 4), exploration_log(100, 40));
  // Degenerate arm count clamps rather than producing log(0).
  EXPECT_DOUBLE_EQ(exploration_log(5, 0), std::log(7.0));
}

// Elimination-soundness fuzz: replay the search's exact elimination rule
// (bai.cpp) on synthetic arms with bounded noise, over thousands of seeded
// rounds. The true best arm must never be eliminated — even when the
// best-vs-runner-up gap is SMALLER than the noise span, so empirical means
// can invert and only the confidence bounds stand between the best arm and
// a wrong kill. Deterministic seeds: a pass is a permanent pass.
TEST(Elimination, NeverKillsTheTrueBestOver10kSeededRounds) {
  constexpr std::uint64_t kRounds = 10000;
  constexpr double kNoise = 0.05;  // samples = mean + uniform(-w, w)
  constexpr double kGap = 0.08;    // < 2w: means can invert early
  constexpr std::uint64_t kMaxSamples = 400;

  std::uint64_t eliminations_total = 0;
  std::uint64_t arms_total = 0;

  for (std::uint64_t round = 0; round < kRounds; ++round) {
    Xoshiro256 rng(0xBA1Du ^ (round * 0x9e3779b97f4a7c15ULL));
    const std::size_t k = 3 + rng.below(5);  // 3..7 arms
    std::vector<double> truth(k);
    for (double& t : truth) t = rng.uniform(0.0, 1.0);
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(truth.begin(), truth.end()) - truth.begin());
    // Enforce the configured gap over the runner-up.
    double runner_up = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < k; ++a) {
      if (a != best) runner_up = std::max(runner_up, truth[a]);
    }
    truth[best] = runner_up + kGap;

    struct SynthArm {
      ArmStats stats;
      bool alive = true;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
    };
    std::vector<SynthArm> arms(k);
    std::uint64_t issued = 0;
    double global_lo = std::numeric_limits<double>::infinity();
    double global_hi = -std::numeric_limits<double>::infinity();

    const auto draw = [&](std::size_t a) {
      const double x = truth[a] + rng.uniform(-kNoise, kNoise);
      arms[a].stats.add(x);
      arms[a].lo = std::min(arms[a].lo, x);
      arms[a].hi = std::max(arms[a].hi, x);
      global_lo = std::min(global_lo, x);
      global_hi = std::max(global_hi, x);
      ++issued;
    };
    for (std::size_t a = 0; a < k; ++a) draw(a);

    for (;;) {
      std::size_t leader = static_cast<std::size_t>(-1);
      for (std::size_t a = 0; a < k; ++a) {
        if (!arms[a].alive) continue;
        if (leader == static_cast<std::size_t>(-1) ||
            arms[a].stats.mean > arms[leader].stats.mean) {
          leader = a;
        }
      }
      ASSERT_NE(leader, static_cast<std::size_t>(-1));

      double range = 0.0;
      bool any_resampled = false;
      for (const SynthArm& arm : arms) {
        if (arm.stats.n >= 2) {
          any_resampled = true;
          range = std::max(range, arm.hi - arm.lo);
        }
      }
      if (!any_resampled) range = std::max(0.0, global_hi - global_lo);
      const double log_term = exploration_log(issued, k);
      const double leader_lb =
          lower_bound(arms[leader].stats, range, log_term);
      const bool leader_seasoned = arms[leader].stats.n >= 2;

      std::size_t challenger = static_cast<std::size_t>(-1);
      double challenger_ub = -std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < k; ++a) {
        if (a == leader || !arms[a].alive) continue;
        const double ub = upper_bound(arms[a].stats, range, log_term);
        if (leader_seasoned && arms[a].stats.n >= 2 && ub < leader_lb) {
          arms[a].alive = false;
          ++eliminations_total;
          ASSERT_NE(a, best)
              << "round " << round << ": true best eliminated at n="
              << arms[a].stats.n << " issued=" << issued;
          continue;
        }
        if (challenger == static_cast<std::size_t>(-1) ||
            ub > challenger_ub) {
          challenger = a;
          challenger_ub = ub;
        }
      }
      if (challenger == static_cast<std::size_t>(-1)) break;
      if (issued >= kMaxSamples) break;
      draw(challenger);
      if (issued < kMaxSamples &&
          bound_radius(arms[leader].stats, range, log_term) >=
              bound_radius(arms[challenger].stats, range, log_term)) {
        draw(leader);
      }
    }
    arms_total += k;
  }

  // The bounds must also be tight enough to ACT: across all rounds the
  // rule should prune a solid majority of the non-best arms, otherwise
  // adaptive search degenerates into the fixed budget it replaces.
  EXPECT_GT(eliminations_total, (arms_total - kRounds) / 2)
      << "eliminated " << eliminations_total << " of "
      << (arms_total - kRounds) << " non-best arms";
}

}  // namespace
}  // namespace wfe::sched
