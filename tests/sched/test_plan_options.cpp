// Cross-scheduler PlanOptions contract: every replay-guided scheduler must
// honor the same knobs the same way — thread count and replay engine never
// change the outcome, stochastic probes draw probe_samples seeded samples,
// the risk-aware path composes with all of it, and a shared EvalCache only
// changes what a plan costs, never what it picks.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <string>

#include "runtime/spec_io.hpp"
#include "sched/eval_cache.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

plat::PlatformSpec platform() { return wl::cori_like_platform(); }

class ReplayGuidedSchedulers : public ::testing::TestWithParam<std::string> {
 protected:
  static PlanOptions stochastic(int threads = 1) {
    PlanOptions options;
    options.threads = threads;
    options.jitter_cv = 0.1;
    options.probe_samples = 4;
    return options;
  }

  Schedule plan(const PlanOptions& options) const {
    const auto shape = EnsembleShape::paper_like(2, 1);
    return make_scheduler(GetParam())->plan(shape, platform(), {3}, options);
  }
};

TEST_P(ReplayGuidedSchedulers, ThreadCountNeverChangesTheStochasticPlan) {
  const Schedule reference = plan(stochastic(1));
  for (const int threads : {2, 8}) {
    const Schedule schedule = plan(stochastic(threads));
    EXPECT_EQ(rt::spec_to_text(schedule.spec),
              rt::spec_to_text(reference.spec))
        << GetParam() << " threads=" << threads;
    EXPECT_EQ(schedule.evaluations, reference.evaluations)
        << GetParam() << " threads=" << threads;
    EXPECT_EQ(schedule.samples, reference.samples)
        << GetParam() << " threads=" << threads;
  }
}

TEST_P(ReplayGuidedSchedulers, ReplayEngineNeverChangesThePlan) {
  PlanOptions seq = stochastic();
  seq.engine = rt::EngineSelection::parse("seq");
  PlanOptions lp = stochastic();
  lp.engine = rt::EngineSelection::parse("lp:2");
  EXPECT_EQ(rt::spec_to_text(plan(seq).spec),
            rt::spec_to_text(plan(lp).spec))
      << GetParam();
}

TEST_P(ReplayGuidedSchedulers, ProbeSamplesMultiplyTheSamplingEffort) {
  PlanOptions one = stochastic();
  one.probe_samples = 1;
  PlanOptions four = stochastic();
  const Schedule cheap = plan(one);
  const Schedule thorough = plan(four);
  EXPECT_GT(thorough.samples, cheap.samples) << GetParam();
}

TEST_P(ReplayGuidedSchedulers, RiskAwareStochasticPlanIsThreadInvariant) {
  PlanOptions options = stochastic(1);
  options.risk_aware = true;
  options.faults = wl::fatal_node_crashes(400.0);
  const Schedule reference = plan(options);
  EXPECT_NO_THROW(reference.spec.validate(platform()));
  options.threads = 8;
  EXPECT_EQ(rt::spec_to_text(plan(options).spec),
            rt::spec_to_text(reference.spec))
      << GetParam();
}

TEST_P(ReplayGuidedSchedulers, SharedCacheChangesCostNotOutcome) {
  const Schedule cold = plan(stochastic());

  EvalCache cache;
  PlanOptions warm_options = stochastic();
  warm_options.shared_cache = &cache;
  const Schedule fill = plan(warm_options);
  EXPECT_EQ(rt::spec_to_text(fill.spec), rt::spec_to_text(cold.spec))
      << GetParam();
  EXPECT_GT(cache.size(), 0u) << GetParam();

  const Schedule warm = plan(warm_options);
  EXPECT_EQ(rt::spec_to_text(warm.spec), rt::spec_to_text(cold.spec))
      << GetParam();
  EXPECT_EQ(warm.evaluations, 0u) << GetParam();
  EXPECT_GT(warm.shared_hits, 0u) << GetParam();
  // Not EQ: an infeasible candidate's draw costs no replay cold (validation
  // fails before simulating) but is served as a shared hit warm, so the
  // warm run can only account for MORE of its probe samples, never fewer.
  EXPECT_GE(warm.samples, fill.samples) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Everyone, ReplayGuidedSchedulers,
                         ::testing::Values("exhaustive", "greedy-refine",
                                           "bai-search"));

}  // namespace
}  // namespace wfe::sched
