// Behaviour of the individual scheduling algorithms.
#include <gtest/gtest.h>

#include "sched/baselines.hpp"
#include "sched/evaluator.hpp"
#include "sched/exhaustive.hpp"
#include "sched/greedy.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

plat::PlatformSpec platform() { return wl::cori_like_platform(); }

TEST(GreedyColocation, ReproducesC15ForTheTable2Shape) {
  // 2 x (16+8) over 3 nodes: each member fits a node whole -> CP = 1,
  // M = 2 — exactly C1.5.
  const auto schedule =
      GreedyColocation().plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  EXPECT_EQ(schedule.spec.total_nodes(), 2);
  for (const auto& m : schedule.spec.members) {
    EXPECT_EQ(m.sim.nodes, m.analyses[0].nodes);
  }
  EXPECT_NE(schedule.spec.members[0].sim.nodes,
            schedule.spec.members[1].sim.nodes);
  EXPECT_EQ(schedule.evaluations, 0u);
}

TEST(GreedyColocation, ReproducesC28ForTheTable4Shape) {
  const auto schedule =
      GreedyColocation().plan(EnsembleShape::paper_like(2, 2), platform(), {3});
  EXPECT_EQ(schedule.spec.total_nodes(), 2);
  for (const auto& m : schedule.spec.members) {
    for (const auto& a : m.analyses) {
      EXPECT_EQ(m.sim.nodes, a.nodes);
    }
  }
}

TEST(GreedyColocation, SplitsWhenAMemberExceedsANode) {
  // 16 + 3x8 = 40 cores > 32: the member must split, with the simulation
  // keeping as many analyses as fit beside it.
  auto shape = EnsembleShape::paper_like(1, 3);
  const auto schedule = GreedyColocation().plan(shape, platform(), {2});
  const auto& m = schedule.spec.members[0];
  int colocated = 0;
  for (const auto& a : m.analyses) {
    if (a.nodes == m.sim.nodes) ++colocated;
  }
  EXPECT_EQ(colocated, 2);  // 16 + 8 + 8 = 32 fills the simulation's node
  EXPECT_EQ(schedule.spec.total_nodes(), 2);
}

TEST(GreedyColocation, PacksMembersOntoSharedNodesUnderTightBudget) {
  // 4 members x 24 cores over 3 nodes (96/96 cores): feasible only by
  // pairing members; the greedy packer must find it.
  const auto schedule =
      GreedyColocation().plan(EnsembleShape::paper_like(4, 1), platform(), {3});
  EXPECT_NO_THROW(schedule.spec.validate(platform()));
  EXPECT_EQ(schedule.spec.total_nodes(), 3);
}

TEST(Exhaustive, MatchesGreedyOnPaperShape) {
  // On the Table 2 shape the oracle and the heuristic agree (C1.5).
  Evaluator evaluator(platform());
  const auto exhaustive =
      Exhaustive().plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  const auto greedy =
      GreedyColocation().plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  const double f_ex = evaluator.score(exhaustive.spec).objective;
  const double f_gr = evaluator.score(greedy.spec).objective;
  EXPECT_NEAR(f_ex, f_gr, 1e-12);
  EXPECT_GT(exhaustive.evaluations, 0u);
}

TEST(Exhaustive, NeverWorseThanAnyBaseline) {
  Evaluator evaluator(platform());
  const auto shape = EnsembleShape::paper_like(2, 2);
  const auto oracle = Exhaustive().plan(shape, platform(), {3});
  const double f_oracle = evaluator.score(oracle.spec).objective;
  for (const char* name : {"greedy-colocate", "round-robin", "random"}) {
    const auto other = make_scheduler(name)->plan(shape, platform(), {3});
    EXPECT_GE(f_oracle + 1e-12, evaluator.score(other.spec).objective)
        << name;
  }
}

TEST(Exhaustive, CapsComponentCount) {
  EXPECT_THROW(
      (void)Exhaustive().plan(EnsembleShape::paper_like(7, 1), platform(),
                              {3}),
      InvalidArgument);
}

TEST(RoundRobin, SpreadsComponents) {
  const auto schedule =
      RoundRobin().plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  // Scatter: sim0 -> n0, ana0 -> n1, sim1 -> n2, ana1 -> n0.
  EXPECT_EQ(schedule.spec.members[0].sim.nodes, (std::set<int>{0}));
  EXPECT_EQ(schedule.spec.members[0].analyses[0].nodes, (std::set<int>{1}));
  EXPECT_EQ(schedule.spec.members[1].sim.nodes, (std::set<int>{2}));
  EXPECT_EQ(schedule.spec.members[1].analyses[0].nodes, (std::set<int>{0}));
}

TEST(RoundRobin, SkipsFullNodes) {
  // Pool of 2: components cycle but respect capacity.
  const auto schedule =
      RoundRobin().plan(EnsembleShape::paper_like(2, 1), platform(), {2});
  EXPECT_NO_THROW(schedule.spec.validate(platform()));
}

TEST(RandomPlacement, DeterministicGivenSeed) {
  const auto a =
      RandomPlacement(7).plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  const auto b =
      RandomPlacement(7).plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  EXPECT_EQ(a.spec.members[0].sim.nodes, b.spec.members[0].sim.nodes);
  EXPECT_EQ(a.spec.members[1].analyses[0].nodes,
            b.spec.members[1].analyses[0].nodes);
}

TEST(Evaluator, CountsAndScores) {
  Evaluator evaluator(platform());
  const auto schedule =
      GreedyColocation().plan(EnsembleShape::paper_like(2, 1), platform(), {3});
  EXPECT_EQ(evaluator.evaluations(), 0u);
  const Evaluation e = evaluator.score(schedule.spec);
  EXPECT_EQ(evaluator.evaluations(), 1u);
  EXPECT_GT(e.objective, 0.0);
  EXPECT_GT(e.ensemble_makespan, 0.0);
  EXPECT_EQ(e.nodes_used, 2);
  EXPECT_GT(e.min_member_efficiency, 0.0);
}

TEST(Evaluator, RejectsSillyProbe) {
  Evaluator evaluator(platform());
  const auto schedule =
      GreedyColocation().plan(EnsembleShape::paper_like(1, 1), platform(), {2});
  EXPECT_THROW((void)evaluator.score(schedule.spec, 1), InvalidArgument);
}

}  // namespace
}  // namespace wfe::sched
