// Online re-planning and the risk-aware objective: incremental repair after
// a node death, scripted-downtime avoidance, thread-count invariance, and
// the scenario isolation of the shared evaluation cache.
#include <gtest/gtest.h>

#include <vector>

#include "sched/batch_evaluator.hpp"
#include "sched/eval_cache.hpp"
#include "sched/replanner.hpp"
#include "sched/risk.hpp"
#include "sched/scheduler.hpp"
#include "support/error.hpp"
#include "workload/presets.hpp"

namespace wfe::sched {
namespace {

EnsembleShape two_member_shape(std::uint64_t steps = 5) {
  return EnsembleShape::paper_like(2, 1, steps);
}

rt::MigrationRequest loss(std::uint32_t member, int dead_node,
                          std::vector<int> member_nodes,
                          std::vector<int> up_nodes, double now = 60.0) {
  rt::MigrationRequest request;
  request.member = member;
  request.dead_node = dead_node;
  request.now_s = now;
  request.member_nodes = std::move(member_nodes);
  request.up_nodes = std::move(up_nodes);
  return request;
}

// -- RePlanner ---------------------------------------------------------------

TEST(RePlanner, RepairsOnlyTheAffectedMember) {
  const EnsembleShape shape = two_member_shape();
  PlanOptions options;
  RePlanner planner(shape, wl::cori_like_platform(), options);
  planner.set_assignment({0, 0, 1, 1});

  const int target = planner.replan(loss(0, 0, {0}, {1, 2, 3}));
  ASSERT_GE(target, 0);
  EXPECT_NE(target, 0);
  const Assignment repaired = planner.assignment();
  // Member 0's two slots moved to the target; member 1 untouched.
  EXPECT_EQ(repaired[0], target);
  EXPECT_EQ(repaired[1], target);
  EXPECT_EQ(repaired[2], 1);
  EXPECT_EQ(repaired[3], 1);
  EXPECT_EQ(planner.replans(), 1u);
  EXPECT_GT(planner.evaluations(), 0u);
}

TEST(RePlanner, DefersWhenTheMemberDoesNotUseTheDeadNode) {
  const EnsembleShape shape = two_member_shape();
  RePlanner planner(shape, wl::cori_like_platform(), {});
  planner.set_assignment({0, 0, 1, 1});
  EXPECT_EQ(planner.replan(loss(1, 0, {1}, {1, 2, 3})), -1);
  EXPECT_EQ(planner.replans(), 0u);
  EXPECT_EQ(planner.assignment(), (Assignment{0, 0, 1, 1}));
}

TEST(RePlanner, DefersWhenNoSurvivorRemains) {
  const EnsembleShape shape = two_member_shape();
  RePlanner planner(shape, wl::cori_like_platform(), {});
  planner.set_assignment({0, 0, 1, 1});
  EXPECT_EQ(planner.replan(loss(0, 0, {0}, {0})), -1);
}

TEST(RePlanner, TargetIsInvariantAcrossRerunsAndThreadCounts) {
  const EnsembleShape shape = two_member_shape();
  int first_target = -2;
  for (const int threads : {1, 2, 8}) {
    for (int rerun = 0; rerun < 2; ++rerun) {
      PlanOptions options;
      options.threads = threads;
      RePlanner planner(shape, wl::cori_like_platform(), options);
      planner.set_assignment({0, 0, 1, 1});
      const int target = planner.replan(loss(0, 0, {0}, {1, 2, 3, 4}));
      if (first_target == -2) first_target = target;
      EXPECT_EQ(target, first_target)
          << "threads=" << threads << " rerun=" << rerun;
      EXPECT_EQ(planner.assignment()[0], first_target);
    }
  }
  ASSERT_GE(first_target, 0);
}

TEST(RePlanner, RiskAwareRepairAvoidsScheduledDowntimeTargets) {
  // Two symmetric repair targets (2 and 3) — in the probe world their
  // scores tie and the canonical tie-break would pick 2. Scheduling node
  // 2's downtime and planning risk-aware must steer the repair to 3.
  const EnsembleShape shape = two_member_shape();
  PlanOptions oblivious;
  RePlanner baseline(shape, wl::cori_like_platform(), oblivious);
  baseline.set_assignment({0, 0, 1, 1});
  EXPECT_EQ(baseline.replan(loss(0, 0, {0}, {2, 3})), 2);

  PlanOptions risk_aware;
  risk_aware.risk_aware = true;
  risk_aware.faults = wl::node_down_at(2, 500.0);
  RePlanner planner(shape, wl::cori_like_platform(), risk_aware);
  planner.set_assignment({0, 0, 1, 1});
  EXPECT_EQ(planner.replan(loss(0, 0, {0}, {2, 3})), 3);
}

TEST(RePlanner, RejectsMismatchedAssignmentAndBadMember) {
  const EnsembleShape shape = two_member_shape();
  RePlanner planner(shape, wl::cori_like_platform(), {});
  EXPECT_THROW(planner.set_assignment({0, 0, 1}), InvalidArgument);
  planner.set_assignment({0, 0, 1, 1});
  EXPECT_THROW(planner.replan(loss(7, 0, {0}, {1})), InvalidArgument);
}

// -- RiskModel ---------------------------------------------------------------

TEST(RiskModel, InactiveWithoutRiskAwareFlag) {
  PlanOptions options;
  options.faults = wl::fatal_node_crashes(100.0);
  options.faults.node_down.push_back({0, 10.0});
  const RiskModel risk = RiskModel::of(options, 20);
  EXPECT_FALSE(risk.active());
  EXPECT_TRUE(risk.doomed.empty());
  EXPECT_DOUBLE_EQ(risk.adjust_objective(0.5, 60.0, 6, 3), 0.5);
}

TEST(RiskModel, ExpectedMakespanGrowsWithExposure) {
  PlanOptions options;
  options.risk_aware = true;
  options.faults = wl::fatal_node_crashes(400.0);
  options.faults.node_down.push_back({1, 30.0});
  const RiskModel risk = RiskModel::of(options, 20);
  ASSERT_TRUE(risk.active());
  EXPECT_EQ(risk.doomed, (std::vector<int>{1}));

  const double nominal = 60.0 / 6.0 * 20.0;  // per-step x campaign
  const double one_node = risk.expected_makespan(60.0, 6, 1);
  const double two_nodes = risk.expected_makespan(60.0, 6, 2);
  const double with_doomed = risk.expected_makespan(60.0, 6, 1, 1);
  EXPECT_GT(one_node, nominal);
  EXPECT_GT(two_nodes, one_node);    // more fault domains, more failures
  EXPECT_GT(with_doomed, one_node);  // a scripted death is a sure failure
  // The guaranteed failure costs exactly one recovery.
  EXPECT_DOUBLE_EQ(with_doomed - one_node,
                   risk.recovery_cost_s(60.0 / 6.0));
  // The adjusted objective shrinks accordingly.
  EXPECT_LT(risk.adjust_objective(0.5, 60.0, 6, 2),
            risk.adjust_objective(0.5, 60.0, 6, 1));
  EXPECT_LT(risk.adjust_objective(0.5, 60.0, 6, 1, 1),
            risk.adjust_objective(0.5, 60.0, 6, 1, 0));
}

TEST(RiskModel, AvoidDoomedRemapsOffScheduledNodes) {
  PlanOptions options;
  options.risk_aware = true;
  options.faults = wl::node_down_at(0, 100.0);
  const RiskModel risk = RiskModel::of(options, 20);

  // Pool {0,1,2}, node 0 doomed: canonical 0 -> 1, 1 -> 2, 2 -> 0 (doomed
  // nodes go to the back of the mapping).
  EXPECT_EQ(avoid_doomed({0, 0, 1}, 3, risk), (Assignment{1, 1, 2}));
  EXPECT_EQ(avoid_doomed({0, 1, 2}, 3, risk), (Assignment{1, 2, 0}));
  EXPECT_EQ(doomed_used_after_avoidance(risk, 1, 3), 0);
  EXPECT_EQ(doomed_used_after_avoidance(risk, 2, 3), 0);
  EXPECT_EQ(doomed_used_after_avoidance(risk, 3, 3), 1);
  EXPECT_EQ(doomed_used_of(risk, {0, 0, 1}), 1);
  EXPECT_EQ(doomed_used_of(risk, {1, 2, 1}), 0);

  // Inactive model: identity.
  const RiskModel off = RiskModel::of({}, 20);
  EXPECT_EQ(avoid_doomed({0, 0, 1}, 3, off), (Assignment{0, 0, 1}));
}

TEST(RiskModel, PlannersPlaceOffScheduledDowntimeNodes) {
  // The same demand planned twice: fault-oblivious lands on node 0 (the
  // canonical choice), risk-aware maps off the node scheduled to die.
  const EnsembleShape shape = two_member_shape();
  const ResourceBudget budget{4};
  for (const char* scheduler : {"exhaustive", "greedy-refine"}) {
    PlanOptions options;
    options.faults = wl::node_down_at(0, 500.0);
    const Schedule oblivious = make_scheduler(scheduler)->plan(
        shape, wl::cori_like_platform(), budget, options);
    bool oblivious_uses_0 = false;
    for (const auto& m : oblivious.spec.members) {
      oblivious_uses_0 = oblivious_uses_0 || m.sim.nodes.count(0) > 0;
    }
    EXPECT_TRUE(oblivious_uses_0) << scheduler;

    options.risk_aware = true;
    const Schedule aware = make_scheduler(scheduler)->plan(
        shape, wl::cori_like_platform(), budget, options);
    for (const auto& m : aware.spec.members) {
      EXPECT_EQ(m.sim.nodes.count(0), 0u) << scheduler;
      for (const auto& a : m.analyses) {
        EXPECT_EQ(a.nodes.count(0), 0u) << scheduler;
      }
    }
  }
}

TEST(RiskModel, SpareNodesShrinkThePlacementPool) {
  PlanOptions options;
  options.spare_nodes = 2;
  EXPECT_EQ(effective_pool({5}, options), 3);
  EXPECT_THROW(effective_pool({2}, options), SpecError);
  options.spare_nodes = -1;
  EXPECT_THROW(effective_pool({5}, options), InvalidArgument);
}

// -- shared-cache scenario isolation (regression) ----------------------------

TEST(EvalCacheScenarios, DifferentFaultConfigsNeverShareScores) {
  // Two evaluators sharing one EvalCache but probing different resilience
  // configurations must miss each other's entries: the scenario
  // fingerprint is part of every key.
  const EnsembleShape shape = two_member_shape();
  const std::vector<Assignment> candidates = {{0, 0, 1, 1}};
  EvalCache shared;

  rt::SimulatedOptions scenario_a;
  scenario_a.faults = wl::degraded_nodes(200.0).probe_view();
  rt::SimulatedOptions scenario_b = scenario_a;
  scenario_b.recovery.chunk_replication = 2;

  BatchEvaluator a(wl::cori_like_platform(), scenario_a, 1);
  a.attach_shared_cache(&shared);
  a.score_assignments(shape, candidates);
  EXPECT_EQ(a.evaluations(), 1u);

  BatchEvaluator b(wl::cori_like_platform(), scenario_b, 1);
  b.attach_shared_cache(&shared);
  b.score_assignments(shape, candidates);
  EXPECT_EQ(b.evaluations(), 1u) << "replication config must not hit the "
                                    "other scenario's cached score";

  // Same config, fresh evaluator: served from the shared tier.
  BatchEvaluator c(wl::cori_like_platform(), scenario_a, 1);
  c.attach_shared_cache(&shared);
  c.score_assignments(shape, candidates);
  EXPECT_EQ(c.evaluations(), 0u);
  EXPECT_EQ(c.cache_hits(), 1u);

  // And the fingerprints themselves differ.
  EXPECT_NE(scenario_fingerprint(scenario_a),
            scenario_fingerprint(scenario_b));
}

}  // namespace
}  // namespace wfe::sched
