// Eq. (1), Eq. (2), Eq. (4) and the coupling regimes (§3.1-§3.2).
#include "core/insitu.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::core {
namespace {

MemberSteady member(double s, double w,
                    std::vector<std::pair<double, double>> ras) {
  MemberSteady m;
  m.sim = {s, w};
  for (const auto& [r, a] : ras) m.analyses.push_back({r, a});
  return m;
}

TEST(InSituStep, RequiresAtLeastOneCoupling) {
  MemberSteady m;
  m.sim = {1.0, 0.1};
  EXPECT_THROW((void)non_overlapped_segment(m), InvalidArgument);
}

TEST(InSituStep, RejectsNegativeDurations) {
  EXPECT_THROW((void)non_overlapped_segment(member(-1.0, 0.1, {{0.1, 0.5}})),
               InvalidArgument);
  EXPECT_THROW((void)non_overlapped_segment(member(1.0, 0.1, {{-0.1, 0.5}})),
               InvalidArgument);
}

TEST(InSituStep, SimulationBoundSigma) {
  // Idle Analyzer everywhere: sigma = S + W.
  const MemberSteady m = member(10.0, 1.0, {{0.5, 2.0}, {0.5, 3.0}});
  EXPECT_DOUBLE_EQ(non_overlapped_segment(m), 11.0);
}

TEST(InSituStep, AnalysisBoundSigma) {
  // One slow analysis dominates: sigma = R + A of the slowest coupling.
  const MemberSteady m = member(5.0, 0.5, {{1.0, 3.0}, {2.0, 9.0}});
  EXPECT_DOUBLE_EQ(non_overlapped_segment(m), 11.0);
}

TEST(InSituStep, ExactBalanceTiesToEitherSide) {
  const MemberSteady m = member(5.0, 1.0, {{2.0, 4.0}});
  EXPECT_DOUBLE_EQ(non_overlapped_segment(m), 6.0);
}

TEST(InSituStep, MakespanIsStepsTimesSigma) {
  const MemberSteady m = member(10.0, 1.0, {{0.5, 2.0}});
  EXPECT_DOUBLE_EQ(member_makespan_model(m, 37), 37.0 * 11.0);
  EXPECT_DOUBLE_EQ(member_makespan_model(m, 0), 0.0);
}

TEST(Regimes, ClassifiesBothScenarios) {
  const MemberSteady m = member(5.0, 0.5, {{1.0, 3.0}, {2.0, 9.0}});
  EXPECT_EQ(classify_coupling(m, 0), CouplingRegime::kIdleAnalyzer);
  EXPECT_EQ(classify_coupling(m, 1), CouplingRegime::kIdleSimulation);
}

TEST(Regimes, ExactBalanceIsIdleAnalyzer) {
  const MemberSteady m = member(5.0, 1.0, {{2.0, 4.0}});
  EXPECT_EQ(classify_coupling(m, 0), CouplingRegime::kIdleAnalyzer);
}

TEST(Regimes, IndexOutOfRangeThrows) {
  const MemberSteady m = member(5.0, 1.0, {{2.0, 4.0}});
  EXPECT_THROW((void)classify_coupling(m, 1), InvalidArgument);
}

TEST(Regimes, ToStringNames) {
  EXPECT_STREQ(to_string(CouplingRegime::kIdleAnalyzer), "idle-analyzer");
  EXPECT_STREQ(to_string(CouplingRegime::kIdleSimulation), "idle-simulation");
}

TEST(StageNames, AllSixStages) {
  EXPECT_STREQ(to_string(StageKind::kSimulate), "S");
  EXPECT_STREQ(to_string(StageKind::kSimIdle), "I^S");
  EXPECT_STREQ(to_string(StageKind::kWrite), "W");
  EXPECT_STREQ(to_string(StageKind::kRead), "R");
  EXPECT_STREQ(to_string(StageKind::kAnalyze), "A");
  EXPECT_STREQ(to_string(StageKind::kAnaIdle), "I^A");
}

TEST(IdleStages, DerivedFromSigma) {
  const MemberSteady m = member(5.0, 0.5, {{1.0, 3.0}, {2.0, 9.0}});
  // sigma = 11; I^S = 11 - 5.5 = 5.5; I^A0 = 11 - 4 = 7; I^A1 = 0.
  EXPECT_DOUBLE_EQ(sim_idle(m), 5.5);
  EXPECT_DOUBLE_EQ(ana_idle(m, 0), 7.0);
  EXPECT_DOUBLE_EQ(ana_idle(m, 1), 0.0);
}

TEST(IdleStages, SimulationBoundMeansZeroSimIdle) {
  const MemberSteady m = member(10.0, 1.0, {{0.5, 2.0}});
  EXPECT_DOUBLE_EQ(sim_idle(m), 0.0);
  EXPECT_DOUBLE_EQ(ana_idle(m, 0), 8.5);
}

TEST(Feasibility, Eq4HoldsWhenAllCouplingsFit) {
  EXPECT_TRUE(is_idle_analyzer_feasible(member(10, 1, {{1, 2}, {3, 4}})));
  EXPECT_FALSE(is_idle_analyzer_feasible(member(10, 1, {{1, 2}, {3, 10}})));
  EXPECT_TRUE(is_idle_analyzer_feasible(member(10, 1, {{1, 10}})));  // equal
}

// Property sweep over random members: sigma is the exact max of all
// per-coupling segments and the simulation segment (Eq. 1), and idle
// derivations are consistent with it.
class SigmaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SigmaProperty, MaxPropertyAndIdleConsistency) {
  Xoshiro256 rng(GetParam());
  const int k = 1 + static_cast<int>(rng.below(5));
  MemberSteady m;
  m.sim = {rng.uniform(0.1, 20.0), rng.uniform(0.0, 2.0)};
  for (int j = 0; j < k; ++j) {
    m.analyses.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.1, 30.0)});
  }
  const double sigma = non_overlapped_segment(m);
  EXPECT_GE(sigma, m.sim.s + m.sim.w);
  bool achieved = sigma == m.sim.s + m.sim.w;
  for (std::size_t j = 0; j < m.analyses.size(); ++j) {
    EXPECT_GE(sigma, m.analyses[j].r + m.analyses[j].a);
    achieved |= sigma == m.analyses[j].r + m.analyses[j].a;
    EXPECT_GE(ana_idle(m, j), 0.0);
    EXPECT_DOUBLE_EQ(sigma - ana_idle(m, j),
                     m.analyses[j].r + m.analyses[j].a);
  }
  EXPECT_TRUE(achieved);  // the max is attained by one of the segments
  EXPECT_GE(sim_idle(m), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomMembers, SigmaProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace wfe::core
