// Eq. (9): the ensemble-level objective F(P) = mean - stddev.
#include "core/objective.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace wfe::core {
namespace {

TEST(Objective, RejectsEmpty) {
  EXPECT_THROW((void)objective({}), InvalidArgument);
}

TEST(Objective, SingleMemberIsItsIndicator) {
  const std::vector<double> p{0.42};
  EXPECT_DOUBLE_EQ(objective(p), 0.42);
}

TEST(Objective, EqualMembersGiveTheMean) {
  const std::vector<double> p{0.3, 0.3, 0.3};
  EXPECT_DOUBLE_EQ(objective(p), 0.3);
}

TEST(Objective, KnownValue) {
  // mean = 5, population stddev = 2 -> F = 3.
  const std::vector<double> p{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(objective(p), 3.0);
}

TEST(Objective, PenalizesVariability) {
  // Same mean, different spread: the uniform ensemble wins (the paper's
  // straggler argument — ensemble makespan is the max member makespan).
  const std::vector<double> uniform{0.5, 0.5};
  const std::vector<double> skewed{0.9, 0.1};
  EXPECT_GT(objective(uniform), objective(skewed));
}

TEST(Objective, NeverExceedsMean) {
  Xoshiro256 rng(8);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> p;
    const int n = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < n; ++i) p.push_back(rng.uniform(0.0, 1.0));
    EXPECT_LE(objective(p), mean(p) + 1e-15);
  }
}

TEST(Objective, CanGoNegativeUnderExtremeSkew) {
  // A heavily skewed ensemble can score below zero — the indicator calls
  // such configurations out as straggler-bound.
  const std::vector<double> p{1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_LT(objective(p), 0.0);
}

TEST(Objective, InvariantUnderMemberOrder) {
  const std::vector<double> a{0.1, 0.7, 0.4};
  const std::vector<double> b{0.7, 0.4, 0.1};
  EXPECT_DOUBLE_EQ(objective(a), objective(b));
}

TEST(Objective, ScalesLinearly) {
  // F(c * P) = c * F(P) for c > 0: mean and stddev are both homogeneous.
  const std::vector<double> p{0.2, 0.5, 0.8};
  std::vector<double> scaled;
  for (double x : p) scaled.push_back(3.0 * x);
  EXPECT_NEAR(objective(scaled), 3.0 * objective(p), 1e-12);
}

}  // namespace
}  // namespace wfe::core
