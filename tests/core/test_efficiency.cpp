// Eq. (3): computational efficiency.
#include "core/efficiency.hpp"

#include <gtest/gtest.h>

#include "core/insitu.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::core {
namespace {

MemberSteady member(double s, double w,
                    std::vector<std::pair<double, double>> ras) {
  MemberSteady m;
  m.sim = {s, w};
  for (const auto& [r, a] : ras) m.analyses.push_back({r, a});
  return m;
}

TEST(Efficiency, PerfectBalanceGivesOne) {
  // S + W == R + A for every coupling: nobody idles.
  EXPECT_DOUBLE_EQ(computational_efficiency(member(5, 1, {{2, 4}})), 1.0);
  EXPECT_DOUBLE_EQ(
      computational_efficiency(member(5, 1, {{2, 4}, {1, 5}})), 1.0);
}

TEST(Efficiency, ZeroLengthStepIsUndefined) {
  EXPECT_THROW((void)computational_efficiency(member(0, 0, {{0, 0}})),
               InvalidArgument);
}

TEST(Efficiency, IdleAnalyzerKnownValue) {
  // sigma = 10+1 = 11; single coupling with R+A = 5.5 -> E = 0.5... compute:
  // E = (S+W)/sigma + (R+A)/sigma - 1 = 1 + 0.5 - 1 = 0.5.
  EXPECT_DOUBLE_EQ(computational_efficiency(member(10, 1, {{1.5, 4.0}})),
                   0.5);
}

TEST(Efficiency, IdleSimulationKnownValue) {
  // sigma = R+A = 22; S+W = 11 -> E = 11/22 + 1 - 1 = 0.5.
  EXPECT_DOUBLE_EQ(computational_efficiency(member(10, 1, {{2.0, 20.0}})),
                   0.5);
}

TEST(Efficiency, ClosedFormEqualsCouplingAverage) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 1 + static_cast<int>(rng.below(4));
    MemberSteady m;
    m.sim = {rng.uniform(0.5, 20.0), rng.uniform(0.0, 1.0)};
    for (int j = 0; j < k; ++j) {
      m.analyses.push_back({rng.uniform(0.0, 3.0), rng.uniform(0.5, 25.0)});
    }
    double avg = 0.0;
    for (std::size_t j = 0; j < m.analyses.size(); ++j) {
      avg += coupling_efficiency(m, j);
    }
    avg /= static_cast<double>(m.analyses.size());
    EXPECT_NEAR(computational_efficiency(m), avg, 1e-12);
  }
}

TEST(Efficiency, BoundedByOne) {
  // E <= 1 always and E > -1; single-coupling members are additionally
  // strictly positive (one of the two idle stages is always zero).
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    MemberSteady m;
    m.sim = {rng.uniform(0.1, 10.0), rng.uniform(0.0, 1.0)};
    const int k = 1 + static_cast<int>(rng.below(5));
    for (int j = 0; j < k; ++j) {
      m.analyses.push_back({rng.uniform(0.0, 2.0), rng.uniform(0.1, 15.0)});
    }
    const double e = computational_efficiency(m);
    EXPECT_LE(e, 1.0 + 1e-12);
    EXPECT_GT(e, -1.0);
    if (k == 1) EXPECT_GT(e, 0.0);
  }
}

TEST(Efficiency, SingleCouplingAlwaysPositive) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    MemberSteady m;
    m.sim = {rng.uniform(0.01, 50.0), rng.uniform(0.0, 5.0)};
    m.analyses = {{rng.uniform(0.0, 5.0), rng.uniform(0.01, 80.0)}};
    EXPECT_GT(computational_efficiency(m), 0.0);
  }
}

TEST(Efficiency, MoreIdleMeansLowerEfficiency) {
  // Shrinking the analysis (more analyzer idle) lowers E in the
  // simulation-bound regime.
  const double e_tight = computational_efficiency(member(10, 1, {{1, 9.5}}));
  const double e_loose = computational_efficiency(member(10, 1, {{1, 3.0}}));
  EXPECT_GT(e_tight, e_loose);
}

TEST(Efficiency, SlowestCouplingDragsTheAverage) {
  // Adding a much slower analysis forces the fast coupling to idle.
  const double balanced = computational_efficiency(member(5, 1, {{2, 4}}));
  const double dragged =
      computational_efficiency(member(5, 1, {{2, 4}, {2, 20}}));
  EXPECT_GT(balanced, dragged);
}

TEST(Efficiency, MatchesPaperDiscussionShape) {
  // §3.4: among Eq. (4)-feasible allocations, the one with the largest
  // R+A (fewest idle cycles in the analysis) maximizes E.
  const MemberSteady cores8 = member(10, 1, {{1.0, 9.0}});   // R+A = 10
  const MemberSteady cores16 = member(10, 1, {{1.0, 6.0}});  // R+A = 7
  const MemberSteady cores32 = member(10, 1, {{1.0, 4.5}});  // R+A = 5.5
  EXPECT_TRUE(is_idle_analyzer_feasible(cores8));
  EXPECT_GT(computational_efficiency(cores8),
            computational_efficiency(cores16));
  EXPECT_GT(computational_efficiency(cores16),
            computational_efficiency(cores32));
}

}  // namespace
}  // namespace wfe::core
