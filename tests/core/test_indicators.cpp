// Eqs. (5), (7), (8) and the §5.2 stage-order equivalence.
#include "core/indicators.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace wfe::core {
namespace {

MemberIndicatorInputs inputs(double e, std::set<int> sim_nodes,
                             std::vector<std::set<int>> ana_nodes, int m) {
  MemberIndicatorInputs in;
  in.efficiency = e;
  in.placement.sim = {std::move(sim_nodes), 16};
  for (auto& nodes : ana_nodes) {
    in.placement.analyses.push_back({std::move(nodes), 8});
  }
  in.ensemble_nodes = m;
  return in;
}

TEST(Indicators, UsageIsEfficiencyPerCore) {
  // E = 0.9, c = 24 -> P^U = 0.0375 (Eq. 5).
  EXPECT_DOUBLE_EQ(indicator_u(inputs(0.9, {0}, {{0}}, 1)), 0.9 / 24.0);
}

TEST(Indicators, AllocationMultipliesByCp) {
  // CP = 1/2 for a dedicated analysis node (Eq. 7).
  const auto in = inputs(0.9, {0}, {{1}}, 2);
  EXPECT_DOUBLE_EQ(indicator_ua(in), (0.9 / 24.0) * 0.5);
}

TEST(Indicators, ProvisioningDividesByM) {
  const auto in = inputs(0.8, {0}, {{0}}, 4);
  EXPECT_DOUBLE_EQ(indicator_up(in), (0.8 / 24.0) / 4.0);
}

TEST(Indicators, FullChainEq8) {
  // P^{U,A,P} = E / (c M) * CP.
  const auto in = inputs(0.96, {0}, {{0}, {2}}, 3);
  const double expected = 0.96 / 32.0 / 3.0 * 0.75;
  EXPECT_DOUBLE_EQ(indicator_uap(in), expected);
}

TEST(Indicators, StageOrdersCommute) {
  // P^{U,A,P} == P^{U,P,A}: the layers are multiplicative (§5.2).
  Xoshiro256 rng(5);
  for (int t = 0; t < 30; ++t) {
    const auto in = inputs(rng.uniform(0.1, 1.0), {0},
                           {{static_cast<int>(rng.below(3))}},
                           3);
    EXPECT_DOUBLE_EQ(member_indicator(in, IndicatorKind::kUAP),
                     member_indicator(in, IndicatorKind::kUPA));
    // And both equal applying the missing layer to the two-stage values.
    EXPECT_NEAR(member_indicator(in, IndicatorKind::kUA) /
                    static_cast<double>(in.ensemble_nodes),
                member_indicator(in, IndicatorKind::kUAP), 1e-15);
    EXPECT_NEAR(member_indicator(in, IndicatorKind::kUP) *
                    placement_indicator(in.placement),
                member_indicator(in, IndicatorKind::kUAP), 1e-15);
  }
}

TEST(Indicators, RejectsInvalidM) {
  EXPECT_THROW((void)indicator_u(inputs(0.9, {0}, {{0}}, 0)),
               InvalidArgument);
  // M smaller than the member's own node span is inconsistent.
  EXPECT_THROW((void)indicator_u(inputs(0.9, {0}, {{1}}, 1)),
               InvalidArgument);
}

TEST(Indicators, MoreCoresLowerUsage) {
  const auto narrow = inputs(0.9, {0}, {{0}}, 1);
  auto wide = inputs(0.9, {0}, {{0}}, 1);
  wide.placement.sim.cores = 32;
  EXPECT_GT(indicator_u(narrow), indicator_u(wide));
}

TEST(Indicators, CoLocationBeatsDistributionAtEqualEfficiency) {
  // The paper's design intent: with equal E, the fully co-located member
  // dominates at the final stage (fewer nodes, CP = 1).
  const auto colocated = inputs(0.8, {0}, {{0}}, 1);
  const auto spread = inputs(0.8, {0}, {{1}}, 2);
  EXPECT_GT(indicator_uap(colocated), indicator_uap(spread));
}

TEST(Indicators, MonotoneDecreasingInM) {
  double prev = 1e9;
  for (int m = 1; m <= 8; ++m) {
    const double p = indicator_uap(inputs(0.9, {0}, {{0}}, m));
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Indicators, Names) {
  EXPECT_STREQ(to_string(IndicatorKind::kU), "P^U");
  EXPECT_STREQ(to_string(IndicatorKind::kUA), "P^{U,A}");
  EXPECT_STREQ(to_string(IndicatorKind::kUP), "P^{U,P}");
  EXPECT_STREQ(to_string(IndicatorKind::kUAP), "P^{U,A,P}");
  EXPECT_STREQ(to_string(IndicatorKind::kUPA), "P^{U,P,A}");
}

}  // namespace
}  // namespace wfe::core
