// Eq. (6): the placement indicator, including the paper's own examples.
#include "core/placement.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace wfe::core {
namespace {

MemberPlacement placement(std::set<int> sim_nodes,
                          std::vector<std::set<int>> ana_nodes,
                          int sim_cores = 16, int ana_cores = 8) {
  MemberPlacement p;
  p.sim = {std::move(sim_nodes), sim_cores};
  for (auto& nodes : ana_nodes) p.analyses.push_back({std::move(nodes), ana_cores});
  return p;
}

TEST(Placement, TotalCores) {
  EXPECT_EQ(placement({0}, {{1}, {2}}).total_cores(), 32);
  EXPECT_EQ(placement({0}, {{0}}).total_cores(), 24);
}

TEST(Placement, NodeCountIsUnionSize) {
  EXPECT_EQ(placement({0}, {{0}}).node_count(), 1);        // co-located
  EXPECT_EQ(placement({0}, {{1}}).node_count(), 2);
  EXPECT_EQ(placement({0}, {{1}, {1}}).node_count(), 2);   // shared node
  EXPECT_EQ(placement({0, 1}, {{2}}).node_count(), 3);     // multi-node sim
}

TEST(Placement, ValidationCatchesDegenerateSpecs) {
  MemberPlacement no_analyses;
  no_analyses.sim = {{0}, 16};
  EXPECT_THROW(no_analyses.validate(), SpecError);

  EXPECT_THROW(placement({}, {{0}}).validate(), SpecError);
  EXPECT_THROW(placement({0}, {{}}).validate(), SpecError);
  EXPECT_THROW(placement({0}, {{0}}, 0).validate(), SpecError);
  EXPECT_THROW(placement({-1}, {{0}}).validate(), SpecError);
}

TEST(PlacementIndicator, FullyCoLocatedIsOne) {
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{0}})), 1.0);
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{0}, {0}})), 1.0);
}

TEST(PlacementIndicator, DedicatedNodesHalve) {
  // |s|=1, |s U a| = 2 -> CP = 1/2 (configurations C_f, C1.1 ... C1.4).
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{1}})), 0.5);
}

TEST(PlacementIndicator, MixedCouplingsAverage) {
  // One co-located, one remote: CP = (1/1 + 1/2) / 2 = 0.75 (C2.7 member).
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{0}, {1}})), 0.75);
}

TEST(PlacementIndicator, PaperTable2Values) {
  // C1.1 member 1: s = {0}, a = {2} -> 1/2.
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{2}})), 0.5);
  // C1.5 member: s = {0}, a = {0} -> 1.
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{0}})), 1.0);
  // C2.1 member: s = {0}, analyses both on {2} -> (1/2 + 1/2)/2 = 1/2.
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0}, {{2}, {2}})), 0.5);
}

TEST(PlacementIndicator, InUnitInterval) {
  for (const auto& p :
       {placement({0}, {{0}}), placement({0}, {{1}}),
        placement({0, 1}, {{2}, {3}}), placement({5}, {{5}, {7}, {9}})}) {
    const double cp = placement_indicator(p);
    EXPECT_GT(cp, 0.0);
    EXPECT_LE(cp, 1.0);
  }
}

TEST(PlacementIndicator, SpreadingAnalysesLowersCp) {
  const double together = placement_indicator(placement({0}, {{0}, {0}}));
  const double half = placement_indicator(placement({0}, {{0}, {1}}));
  const double apart = placement_indicator(placement({0}, {{1}, {2}}));
  EXPECT_GT(together, half);
  EXPECT_GT(half, apart);
}

TEST(PlacementIndicator, MultiNodeSimulation) {
  // s = {0,1}; analysis on {1}: |s U a| = 2 -> CP = 2/2 = 1 (subset).
  EXPECT_DOUBLE_EQ(placement_indicator(placement({0, 1}, {{1}})), 1.0);
  // analysis on {2}: |s U a| = 3 -> CP = 2/3.
  EXPECT_NEAR(placement_indicator(placement({0, 1}, {{2}})), 2.0 / 3.0,
              1e-12);
}

TEST(IsColocated, SubsetCriterion) {
  EXPECT_TRUE(is_colocated(placement({0}, {{0}}), 0));
  EXPECT_FALSE(is_colocated(placement({0}, {{1}}), 0));
  EXPECT_TRUE(is_colocated(placement({0, 1}, {{1}}), 0));
  EXPECT_FALSE(is_colocated(placement({0, 1}, {{1, 2}}), 0));
}

TEST(IsColocated, PerCouplingIndex) {
  const MemberPlacement p = placement({0}, {{0}, {1}});
  EXPECT_TRUE(is_colocated(p, 0));
  EXPECT_FALSE(is_colocated(p, 1));
  EXPECT_THROW((void)is_colocated(p, 2), InvalidArgument);
}

}  // namespace
}  // namespace wfe::core
