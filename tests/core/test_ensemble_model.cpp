// Whole-ensemble model: N, M, indicator vectors, objective, makespan.
#include "core/ensemble_model.hpp"

#include <gtest/gtest.h>

#include "core/efficiency.hpp"
#include "support/error.hpp"

namespace wfe::core {
namespace {

EnsembleMemberModel make_member(double s, double w, double r, double a,
                                std::set<int> sim_nodes,
                                std::set<int> ana_nodes) {
  EnsembleMemberModel m;
  m.steady.sim = {s, w};
  m.steady.analyses = {{r, a}};
  m.placement.sim = {std::move(sim_nodes), 16};
  m.placement.analyses = {{std::move(ana_nodes), 8}};
  return m;
}

TEST(EnsembleModel, RejectsEmptyEnsemble) {
  EXPECT_THROW(EnsembleModel{std::vector<EnsembleMemberModel>{}}, SpecError);
}

TEST(EnsembleModel, RejectsSteadyPlacementMismatch) {
  EnsembleMemberModel m = make_member(10, 1, 1, 8, {0}, {0});
  m.steady.analyses.push_back({1.0, 2.0});  // 2 steady, 1 placed
  EXPECT_THROW(EnsembleModel{std::vector{m}}, SpecError);
}

TEST(EnsembleModel, CountsMembersAndNodes) {
  const EnsembleModel model({
      make_member(10, 1, 1, 8, {0}, {0}),
      make_member(10, 1, 1, 8, {1}, {2}),
  });
  EXPECT_EQ(model.member_count(), 2u);
  EXPECT_EQ(model.total_nodes(), 3);  // {0} U {1,2}
}

TEST(EnsembleModel, SharedNodesCountedOnce) {
  const EnsembleModel model({
      make_member(10, 1, 1, 8, {0}, {1}),
      make_member(10, 1, 1, 8, {0}, {1}),
  });
  EXPECT_EQ(model.total_nodes(), 2);
}

TEST(EnsembleModel, MemberEfficiencyDelegatesToEq3) {
  const EnsembleMemberModel m = make_member(10, 1, 1, 8, {0}, {0});
  const EnsembleModel model({m});
  EXPECT_DOUBLE_EQ(model.member_efficiency(0),
                   computational_efficiency(m.steady));
}

TEST(EnsembleModel, IndicatorVectorUsesGlobalM) {
  // Two members on disjoint node pairs: M = 4 affects both indicators.
  const EnsembleModel model({
      make_member(10, 1, 1, 8, {0}, {1}),
      make_member(10, 1, 1, 8, {2}, {3}),
  });
  const auto p = model.member_indicators(IndicatorKind::kUAP);
  ASSERT_EQ(p.size(), 2u);
  const double e = model.member_efficiency(0);
  EXPECT_DOUBLE_EQ(p[0], e / 24.0 * 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(p[0], p[1]);
}

TEST(EnsembleModel, ObjectiveOfIdenticalMembersIsTheirIndicator) {
  const EnsembleModel model({
      make_member(10, 1, 1, 8, {0}, {0}),
      make_member(10, 1, 1, 8, {1}, {1}),
  });
  const auto p = model.member_indicators(IndicatorKind::kUA);
  EXPECT_DOUBLE_EQ(model.objective(IndicatorKind::kUA), p[0]);
}

TEST(EnsembleModel, ObjectivePenalizesAsymmetry) {
  // C1.3-style asymmetry (one co-located member, one spread member) scores
  // below a symmetric pair with the same mean-ish indicators.
  const EnsembleModel symmetric({
      make_member(10, 1, 1, 8, {0}, {0}),
      make_member(10, 1, 1, 8, {1}, {1}),
  });
  const EnsembleModel asymmetric({
      make_member(10, 1, 1, 8, {0}, {0}),
      make_member(10, 1, 1, 8, {1}, {2}),
  });
  EXPECT_GT(symmetric.objective(IndicatorKind::kUAP),
            asymmetric.objective(IndicatorKind::kUAP));
}

TEST(EnsembleModel, EnsembleMakespanIsMaxMember) {
  const EnsembleModel model({
      make_member(10, 1, 1, 8, {0}, {0}),    // sigma 11
      make_member(10, 1, 2, 14, {1}, {2}),   // sigma 16
  });
  EXPECT_DOUBLE_EQ(model.ensemble_makespan_model(10), 160.0);
}

TEST(EnsembleModel, MemberAccessorBounds) {
  const EnsembleModel model({make_member(10, 1, 1, 8, {0}, {0})});
  EXPECT_NO_THROW((void)model.member(0));
  EXPECT_THROW((void)model.member(1), InvalidArgument);
}

}  // namespace
}  // namespace wfe::core
