// §3.4 provisioning heuristic.
#include "core/heuristic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/insitu.hpp"
#include "support/error.hpp"

namespace wfe::core {
namespace {

/// Synthetic analysis scaling: A(c) = work / speedup(c), fixed read time.
AnaSteady scaled(double work, double read, int cores, double f = 0.92) {
  const double speedup = 1.0 / ((1.0 - f) + f / cores);
  return AnaSteady{read, work / speedup};
}

TEST(Heuristic, RejectsBadInputs) {
  const SimSteady sim{10.0, 1.0};
  EXPECT_THROW((void)provision_analysis_cores(sim, nullptr, 8),
               InvalidArgument);
  EXPECT_THROW(
      (void)provision_analysis_cores(
          sim, [](int c) { return scaled(10, 0.5, c); }, 0),
      InvalidArgument);
}

TEST(Heuristic, EvaluatesEveryCoreCount) {
  const SimSteady sim{10.0, 1.0};
  const auto result = provision_analysis_cores(
      sim, [](int c) { return scaled(20.0, 0.5, c); }, 16);
  EXPECT_EQ(result.candidates.size(), 16u);
  for (int c = 1; c <= 16; ++c) {
    EXPECT_EQ(result.candidates[static_cast<std::size_t>(c - 1)].cores, c);
  }
}

TEST(Heuristic, PicksMaxEfficiencyAmongFeasible) {
  // The paper's own shape: feasibility kicks in at some core count; among
  // feasible counts the SMALLEST one has the largest R+A and thus max E,
  // so the heuristic should pick the first feasible count.
  const SimSteady sim{10.0, 1.0};
  const auto result = provision_analysis_cores(
      sim, [](int c) { return scaled(30.0, 0.5, c); }, 32);
  ASSERT_TRUE(result.any_feasible);
  const auto& chosen = result.candidates[result.chosen_index];
  EXPECT_TRUE(chosen.feasible);
  // No feasible candidate has higher efficiency.
  for (const auto& c : result.candidates) {
    if (c.feasible) EXPECT_LE(c.efficiency, chosen.efficiency + 1e-12);
  }
  // And the chosen one is the boundary: one fewer core is infeasible.
  if (result.cores > 1) {
    EXPECT_FALSE(
        result.candidates[static_cast<std::size_t>(result.cores - 2)]
            .feasible);
  }
}

TEST(Heuristic, SigmaMinimizedByChoice) {
  const SimSteady sim{10.0, 1.0};
  const auto result = provision_analysis_cores(
      sim, [](int c) { return scaled(30.0, 0.5, c); }, 32);
  const double chosen_sigma = result.candidates[result.chosen_index].sigma;
  for (const auto& c : result.candidates) {
    EXPECT_GE(c.sigma, chosen_sigma - 1e-12);
  }
}

TEST(Heuristic, AllFeasibleStillPicksMaxE) {
  // A very cheap analysis is feasible everywhere; E decreases with cores,
  // so 1 core wins.
  const SimSteady sim{10.0, 1.0};
  const auto result = provision_analysis_cores(
      sim, [](int c) { return scaled(5.0, 0.1, c); }, 8);
  EXPECT_TRUE(result.any_feasible);
  EXPECT_EQ(result.cores, 1);
}

TEST(Heuristic, NothingFeasibleFallsBackToMinSigma) {
  // The analysis is slower than the simulation at every core count.
  const SimSteady sim{1.0, 0.1};
  const auto result = provision_analysis_cores(
      sim, [](int c) { return scaled(100.0, 0.5, c); }, 8);
  EXPECT_FALSE(result.any_feasible);
  EXPECT_EQ(result.cores, 8);  // the fastest analysis wins on sigma
}

TEST(Heuristic, CandidatesCarryConsistentModel) {
  const SimSteady sim{12.0, 0.5};
  const auto result = provision_analysis_cores(
      sim, [](int c) { return scaled(25.0, 0.3, c); }, 16);
  for (const auto& c : result.candidates) {
    const MemberSteady m{sim, {c.analysis}};
    EXPECT_DOUBLE_EQ(c.sigma, non_overlapped_segment(m));
    EXPECT_EQ(c.feasible, is_idle_analyzer_feasible(m));
  }
}

}  // namespace
}  // namespace wfe::core
