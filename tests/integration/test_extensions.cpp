// Cross-cutting regression tests for the extension experiments, so the
// extension benches' narratives stay true.
#include <gtest/gtest.h>

#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "sched/evaluator.hpp"
#include "sched/scheduler.hpp"
#include "workload/campaign.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

TEST(Extensions, GreedySchedulerMatchesOracleOnPaperShapes) {
  const auto platform = wl::cori_like_platform();
  sched::Evaluator evaluator(platform);
  for (const auto& [members, analyses] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {2, 2}, {3, 1}}) {
    const auto shape = sched::EnsembleShape::paper_like(members, analyses);
    const auto oracle =
        sched::make_scheduler("exhaustive")->plan(shape, platform, {3});
    const auto greedy =
        sched::make_scheduler("greedy-colocate")->plan(shape, platform, {3});
    EXPECT_NEAR(evaluator.score(greedy.spec).objective,
                evaluator.score(oracle.spec).objective, 1e-12)
        << members << "x" << analyses;
  }
}

TEST(Extensions, ScatterBaselineLosesOnPaperShape) {
  const auto platform = wl::cori_like_platform();
  sched::Evaluator evaluator(platform);
  const auto shape = sched::EnsembleShape::paper_like(2, 1);
  const double greedy =
      evaluator
          .score(sched::make_scheduler("greedy-colocate")
                     ->plan(shape, platform, {3})
                     .spec)
          .objective;
  const double scatter =
      evaluator
          .score(sched::make_scheduler("round-robin")
                     ->plan(shape, platform, {3})
                     .spec)
          .objective;
  EXPECT_GT(greedy, 2.0 * scatter);
}

TEST(Extensions, BufferingPreservesThroughputInIdleSimRegime) {
  // Deep buffers absorb writer idle but the ensemble makespan stays
  // within 1% — throughput is pinned by the slowest stage.
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  auto base = wl::paper_config("C1.1");
  base.spec.n_steps = 30;
  auto deep = base;
  for (auto& m : deep.spec.members) m.buffer_capacity = 30;
  const double mk_base =
      met::ensemble_makespan(exec.run(base.spec).trace);
  const double mk_deep =
      met::ensemble_makespan(exec.run(deep.spec).trace);
  EXPECT_NEAR(mk_deep, mk_base, 0.01 * mk_base);
}

TEST(Extensions, CampaignConfirmsC15UnderNoise) {
  wl::CampaignOptions options;
  options.trials = 5;
  options.jitter_cv = 0.05;
  options.n_steps = 10;
  const auto stats = wl::run_campaign(wl::paper_set1(),
                                      wl::cori_like_platform(), options);
  for (const auto& s : stats) {
    if (s.name == "C1.5") {
      EXPECT_EQ(s.wins, options.trials);
    } else {
      EXPECT_EQ(s.wins, 0) << s.name;
    }
  }
}

TEST(Extensions, MultiNodeSimulationTradesPenaltyForCores) {
  // 48 cores over two nodes beat 16 cores on one node on raw S*, but the
  // indicator still prefers the small co-located member (CP, c_i, M).
  rt::SimulatedExecutor exec(wl::cori_like_platform());

  rt::EnsembleSpec small;
  small.n_steps = 6;
  rt::MemberSpec m1;
  m1.sim = wl::gltph_like_simulation({0}, 16);
  m1.analyses.push_back(wl::bipartite_like_analysis({0}));
  small.members.push_back(m1);

  rt::EnsembleSpec wide;
  wide.n_steps = 6;
  rt::MemberSpec m2;
  m2.sim = wl::gltph_like_simulation({0, 1}, 48);
  m2.analyses.push_back(wl::bipartite_like_analysis({1}));
  wide.members.push_back(m2);

  const auto a_small = rt::assess(small, exec.run(small));
  const auto a_wide = rt::assess(wide, exec.run(wide));
  EXPECT_LT(a_wide.members[0].steady.sim.s, a_small.members[0].steady.sim.s);
  EXPECT_GT(a_small.objective(core::IndicatorKind::kUAP),
            a_wide.objective(core::IndicatorKind::kUAP));
}

}  // namespace
}  // namespace wfe
