// The headline regressions: running the paper's configurations through the
// full stack must reproduce the *shapes* the paper reports (who wins, in
// what order) for Figures 3-5 and 8-9 and the §3.4 heuristic.
#include <gtest/gtest.h>

#include <map>

#include "core/heuristic.hpp"
#include "metrics/steady_state.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

using core::IndicatorKind;

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    exec_ = new rt::SimulatedExecutor(wl::cori_like_platform());
    for (const auto& c : wl::paper_table2()) run(c);
    for (const auto& c : wl::paper_table4()) run(c);
  }
  static void TearDownTestSuite() {
    delete exec_;
    exec_ = nullptr;
    results_.clear();
    assessments_.clear();
  }

  static void run(const wl::NamedConfig& c) {
    results_[c.name] = exec_->run(c.spec);
    assessments_.emplace(c.name, rt::assess(c.spec, results_[c.name]));
  }

  static const rt::ExecutionResult& result(const std::string& name) {
    return results_.at(name);
  }
  static const rt::Assessment& assessment(const std::string& name) {
    return assessments_.at(name);
  }
  static double F(const std::string& name, IndicatorKind kind) {
    return assessments_.at(name).objective(kind);
  }

  static rt::SimulatedExecutor* exec_;
  static std::map<std::string, rt::ExecutionResult> results_;
  static std::map<std::string, rt::Assessment> assessments_;
};

rt::SimulatedExecutor* PaperShapes::exec_ = nullptr;
std::map<std::string, rt::ExecutionResult> PaperShapes::results_;
std::map<std::string, rt::Assessment> PaperShapes::assessments_;

// ------------------------------------------------------------ Figure 3

TEST_F(PaperShapes, Fig3_CoLocationRaisesAnalysisMissRatio) {
  auto ana_miss = [&](const std::string& cfg) {
    return met::component_metrics(result(cfg).trace, {0, 0}).llc_miss_ratio;
  };
  // Heterogeneous co-location (C1.3/C1.5 analyses with their simulation)
  // misses more than analysis/analysis sharing (C1.1), which misses more
  // than the contention-free analyses of C1.2.
  EXPECT_GT(ana_miss("C1.5"), ana_miss("C1.1"));
  EXPECT_GT(ana_miss("C1.3"), ana_miss("C1.1"));
  EXPECT_GT(ana_miss("C1.1"), ana_miss("C1.2"));
  EXPECT_DOUBLE_EQ(ana_miss("C1.1"), ana_miss("C1.4"));
}

TEST_F(PaperShapes, Fig3_CoLocationFreeBaselineHasLowestMissRatios) {
  const auto& cf = result("Cf").trace;
  for (const auto& other : {"Cc", "C1.1", "C1.2", "C1.3", "C1.4", "C1.5"}) {
    const auto& t = result(other).trace;
    double max_sim_miss = 0.0, max_ana_miss = 0.0;
    for (const auto& cm : met::all_component_metrics(t)) {
      if (cm.component.is_simulation()) {
        max_sim_miss = std::max(max_sim_miss, cm.llc_miss_ratio);
      } else {
        max_ana_miss = std::max(max_ana_miss, cm.llc_miss_ratio);
      }
    }
    EXPECT_GE(max_sim_miss,
              met::component_metrics(cf, {0, -1}).llc_miss_ratio)
        << other;
    EXPECT_GE(max_ana_miss, met::component_metrics(cf, {0, 0}).llc_miss_ratio)
        << other;
  }
}

TEST_F(PaperShapes, Fig3_AnalysesAreMoreMemoryIntensiveThanSimulations) {
  for (const auto& c : wl::paper_table2()) {
    for (const auto& cm : met::all_component_metrics(result(c.name).trace)) {
      const auto sim =
          met::component_metrics(result(c.name).trace,
                                 {cm.component.member, -1});
      if (!cm.component.is_simulation()) {
        EXPECT_GT(cm.memory_intensity, 10.0 * sim.memory_intensity)
            << c.name;
      }
    }
  }
}

TEST_F(PaperShapes, Fig3_IpcDropsUnderCoLocation) {
  auto sim_ipc = [&](const std::string& cfg) {
    return met::component_metrics(result(cfg).trace, {0, -1}).ipc;
  };
  EXPECT_GT(sim_ipc("Cf"), sim_ipc("Cc"));
  EXPECT_GT(sim_ipc("C1.1"), sim_ipc("C1.2"));  // C1.1 sims run alone
}

// --------------------------------------------------------- Figures 4-5

TEST_F(PaperShapes, Fig5_C15HasTheBestEnsembleMakespanOfSet1) {
  const double c15 = assessment("C1.5").ensemble_makespan_measured;
  for (const auto& other : {"C1.1", "C1.2", "C1.3", "C1.4"}) {
    EXPECT_LE(c15,
              assessment(other).ensemble_makespan_measured + 1e-6)
        << other;
  }
  // ... strictly better than the non-co-located ones.
  for (const auto& other : {"C1.1", "C1.2", "C1.4"}) {
    EXPECT_LT(c15, assessment(other).ensemble_makespan_measured) << other;
  }
}

TEST_F(PaperShapes, Fig4_C14SuffersFromAnalysisContention) {
  // C1.4 (analyses sharing a node, remote reads) has the worst member
  // makespan of set 1.
  double worst = 0.0;
  for (const auto& c : wl::paper_set1()) {
    for (const auto& m : assessment(c.name).members) {
      worst = std::max(worst, m.makespan_measured);
    }
  }
  double c14_worst = 0.0;
  for (const auto& m : assessment("C1.4").members) {
    c14_worst = std::max(c14_worst, m.makespan_measured);
  }
  EXPECT_DOUBLE_EQ(c14_worst, worst);
}

TEST_F(PaperShapes, Fig5_C28HasTheBestEnsembleMakespanOfSet2) {
  const double c28 = assessment("C2.8").ensemble_makespan_measured;
  for (const auto& c : wl::paper_table4()) {
    if (c.name == "C2.8") continue;
    EXPECT_LT(c28, assessment(c.name).ensemble_makespan_measured) << c.name;
  }
}

// ------------------------------------------------------------ Figure 8

TEST_F(PaperShapes, Fig8_FinalStageRanksC15First) {
  const double c15 = F("C1.5", IndicatorKind::kUAP);
  for (const auto& other : {"C1.1", "C1.2", "C1.3", "C1.4"}) {
    EXPECT_GT(c15, F(other, IndicatorKind::kUAP)) << other;
  }
}

TEST_F(PaperShapes, Fig8_C14SecondAtFinalStage) {
  // "the performance of C1.4 is degraded to lower than C1.5, but higher
  //  than C1.1, C1.2, C1.3."
  const double c14 = F("C1.4", IndicatorKind::kUAP);
  EXPECT_LT(c14, F("C1.5", IndicatorKind::kUAP));
  for (const auto& other : {"C1.1", "C1.2", "C1.3"}) {
    EXPECT_GT(c14, F(other, IndicatorKind::kUAP)) << other;
  }
}

TEST_F(PaperShapes, Fig8_UPStageCannotSeparateC14FromC15) {
  // "P^{U,P} is not able to differentiate the performance of C1.4 from
  //  C1.5 as these two configurations both use 2 compute nodes": at the
  //  U,P stage C1.5 does NOT come out ahead — only the allocation layer
  //  ranks it above C1.4, and decisively so.
  EXPECT_GE(F("C1.4", IndicatorKind::kUP), F("C1.5", IndicatorKind::kUP));
  const double ua14 = F("C1.4", IndicatorKind::kUA);
  const double ua15 = F("C1.5", IndicatorKind::kUA);
  EXPECT_GT((ua15 - ua14) / ua14, 0.4);
}

TEST_F(PaperShapes, Fig8_StageOrdersAgreeOnTheFinalValue) {
  for (const auto& c : wl::paper_set1()) {
    EXPECT_DOUBLE_EQ(F(c.name, IndicatorKind::kUAP),
                     F(c.name, IndicatorKind::kUPA))
        << c.name;
  }
}

TEST_F(PaperShapes, Fig8_CoLocationBeatsDistributionForSingleMembers) {
  // Cc beats Cf decisively once allocation and provisioning are stacked —
  // the paper's headline co-location conclusion.
  EXPECT_GT(F("Cc", IndicatorKind::kUAP),
            3.0 * F("Cf", IndicatorKind::kUAP));
}

// ------------------------------------------------------------ Figure 9

TEST_F(PaperShapes, Fig9_UPStageGroupsByNodeCount) {
  // "P^{U,P} separates the set of configurations in two groups defined by
  //  the number of compute nodes" — every 2-node config outranks every
  //  3-node config at the U,P stage.
  for (const auto& two : {"C2.6", "C2.7", "C2.8"}) {
    for (const auto& three : {"C2.1", "C2.2", "C2.3", "C2.4", "C2.5"}) {
      EXPECT_GT(F(two, IndicatorKind::kUP), F(three, IndicatorKind::kUP))
          << two << " vs " << three;
    }
  }
}

TEST_F(PaperShapes, Fig9_FinalStageIsolatesC28) {
  const double c28 = F("C2.8", IndicatorKind::kUAP);
  for (const auto& c : wl::paper_table4()) {
    if (c.name == "C2.8") continue;
    EXPECT_GT(c28, F(c.name, IndicatorKind::kUAP)) << c.name;
  }
}

TEST_F(PaperShapes, Fig9_FinalStageSeparatesC26C27FromSpreadConfigs) {
  for (const auto& good : {"C2.6", "C2.7"}) {
    for (const auto& spread : {"C2.1", "C2.2", "C2.5"}) {
      EXPECT_GT(F(good, IndicatorKind::kUAP),
                F(spread, IndicatorKind::kUAP))
          << good << " vs " << spread;
    }
  }
}

// -------------------------------------------------- headline magnitude

TEST_F(PaperShapes, IndicatorSpreadSpansAnOrderOfMagnitude) {
  // The paper reports improvements up to four orders of magnitude between
  // co-location choices on its (noisy, measured) platform; our
  // deterministic model reproduces the ordering with a >= 5x spread
  // between the best fully-co-located and the worst spread configuration.
  double best = 0.0, worst = 1e18;
  for (const auto& c : wl::paper_table2()) {
    const double f = F(c.name, IndicatorKind::kUAP);
    best = std::max(best, f);
    worst = std::min(worst, f);
  }
  EXPECT_GT(best / worst, 5.0);
}

// ----------------------------------------------------- §3.4 heuristic

TEST_F(PaperShapes, Heuristic_Picks8CoresLikeThePaper) {
  // Reproduce Figure 7 / §3.4: sweep the analysis core count on the
  // co-location-free member; Eq. (4) feasibility begins between 4 and 8
  // cores, and 8 cores maximizes E.
  const auto platform = wl::cori_like_platform();
  rt::SimulatedExecutor exec(platform);
  auto eval = [&](int cores) {
    auto cfg = wl::paper_config("Cf");
    cfg.spec.members[0].analyses[0].cores = cores;
    cfg.spec.n_steps = 5;
    const auto a = rt::assess(cfg.spec, exec.run(cfg.spec));
    return a.members[0].steady.analyses[0];
  };
  const auto sim_side = [&] {
    auto cfg = wl::paper_config("Cf");
    cfg.spec.n_steps = 5;
    const auto a = rt::assess(cfg.spec, exec.run(cfg.spec));
    return a.members[0].steady.sim;
  }();

  const auto result = core::provision_analysis_cores(sim_side, eval, 32);
  EXPECT_TRUE(result.any_feasible);
  EXPECT_EQ(result.cores, 8);
  // 1-4 cores infeasible (analysis longer than the simulation step).
  for (int c = 1; c <= 4; ++c) {
    EXPECT_FALSE(result.candidates[static_cast<std::size_t>(c - 1)].feasible)
        << c;
  }
  for (int c = 8; c <= 32; c *= 2) {
    EXPECT_TRUE(result.candidates[static_cast<std::size_t>(c - 1)].feasible)
        << c;
  }
}

}  // namespace
}  // namespace wfe
