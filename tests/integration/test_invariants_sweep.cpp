// Parameterized invariant sweep: every paper configuration, replayed,
// must satisfy the structural invariants of the execution model — the
// coupling protocol, complete stage accounting, Eq. (1) consistency and
// counter sanity. This is the broad safety net under the shape tests.
#include <gtest/gtest.h>

#include <map>

#include "core/efficiency.hpp"
#include "core/insitu.hpp"
#include "metrics/steady_state.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/simulated_executor.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

using core::StageKind;

class ConfigSweep : public ::testing::TestWithParam<std::string> {
 protected:
  static rt::ExecutionResult run(const std::string& name,
                                 double jitter = 0.0) {
    auto cfg = wl::paper_config(name);
    cfg.spec.n_steps = 7;
    rt::SimulatedOptions opt;
    opt.jitter_cv = jitter;
    opt.seed = 99;
    rt::SimulatedExecutor exec(wl::cori_like_platform(), opt);
    return exec.run(cfg.spec);
  }
};

TEST_P(ConfigSweep, ProtocolOrderHolds) {
  const auto result = run(GetParam());
  // For every member: W_i ends before every R_i starts; all R_i end
  // before W_{i+1} starts (buffer capacity 1).
  for (std::uint32_t member : result.trace.members()) {
    std::map<std::uint64_t, double> w_start, w_end, r_first, r_last;
    for (const auto& r : result.trace.records()) {
      if (r.component.member != member) continue;
      if (r.kind == StageKind::kWrite) {
        w_start[r.step] = r.start;
        w_end[r.step] = r.end;
      } else if (r.kind == StageKind::kRead) {
        auto [i1, f1] = r_first.emplace(r.step, r.start);
        if (!f1) i1->second = std::min(i1->second, r.start);
        auto [i2, f2] = r_last.emplace(r.step, r.end);
        if (!f2) i2->second = std::max(i2->second, r.end);
      }
    }
    for (const auto& [step, end] : w_end) {
      ASSERT_TRUE(r_first.contains(step));
      EXPECT_GE(r_first[step], end - 1e-9);
      if (w_start.contains(step + 1)) {
        EXPECT_GE(w_start[step + 1], r_last[step] - 1e-9);
      }
    }
  }
}

TEST_P(ConfigSweep, StageAccountingIsGapless) {
  const auto result = run(GetParam());
  for (const auto& id : result.trace.components()) {
    double total = 0.0;
    for (const auto& r : result.trace.for_component(id)) {
      total += r.duration();
    }
    const double span =
        result.trace.component_end(id) - result.trace.component_start(id);
    EXPECT_NEAR(total, span, 1e-6 * std::max(1.0, span)) << id.str();
  }
}

TEST_P(ConfigSweep, MeasuredSigmaIsTheMaxOfMeasuredSegments) {
  const auto result = run(GetParam());
  for (std::uint32_t member : result.trace.members()) {
    const core::MemberSteady steady =
        met::member_steady_state(result.trace, member);
    const double sigma = core::non_overlapped_segment(steady);
    double expected = steady.sim.s + steady.sim.w;
    for (const auto& a : steady.analyses) {
      expected = std::max(expected, a.r + a.a);
    }
    EXPECT_DOUBLE_EQ(sigma, expected);
    EXPECT_GT(core::computational_efficiency(steady), 0.0);
  }
}

TEST_P(ConfigSweep, CountersStayPhysical) {
  const auto result = run(GetParam());
  for (const auto& id : result.trace.components()) {
    const auto c = result.trace.component_counters(id);
    EXPECT_GT(c.instructions, 0.0) << id.str();
    EXPECT_GT(c.cycles, 0.0);
    EXPECT_GE(c.llc_references, c.llc_misses);
    EXPECT_GT(c.ipc(), 0.0);
    EXPECT_LE(c.llc_miss_ratio(), 0.5);  // platform max_miss_ratio
  }
}

TEST_P(ConfigSweep, InvariantsSurviveJitter) {
  const auto result = run(GetParam(), 0.08);
  // Protocol + accounting under noise (the two cheapest invariants).
  for (const auto& id : result.trace.components()) {
    double total = 0.0;
    double last_end = -1.0;
    for (const auto& r : result.trace.for_component(id)) {
      EXPECT_GE(r.start, last_end - 1e-9) << id.str();
      last_end = r.end;
      total += r.duration();
    }
    EXPECT_GT(total, 0.0);
  }
}

std::vector<std::string> all_config_names() {
  std::vector<std::string> names;
  for (const auto& c : wl::paper_table2()) names.push_back(c.name);
  for (const auto& c : wl::paper_table4()) names.push_back(c.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllPaperConfigs, ConfigSweep,
                         ::testing::ValuesIn(all_config_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace wfe
