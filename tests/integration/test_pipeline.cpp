// End-to-end pipeline tests across executors: the same spec flows through
// simulated and native execution into identical downstream machinery, and
// cross-cutting invariants hold for both.
#include <gtest/gtest.h>

#include "core/insitu.hpp"
#include "metrics/traditional.hpp"
#include "runtime/bridge.hpp"
#include "runtime/native_executor.hpp"
#include "runtime/simulated_executor.hpp"
#include "workload/generators.hpp"
#include "workload/paper_configs.hpp"
#include "workload/presets.hpp"

namespace wfe {
namespace {

TEST(Pipeline, SameSpecRunsOnBothExecutors) {
  // Native execution ignores placement but accepts the same spec type.
  rt::EnsembleSpec spec = wl::small_native_ensemble(2, 1, 3);
  const auto native = rt::NativeExecutor().run(spec);

  // For the simulated run, shrink the modelled workload to match scale.
  rt::SimulatedExecutor sim_exec(wl::cori_like_platform());
  const auto simulated = sim_exec.run(spec);

  // Both produce assessable traces with the same component structure.
  EXPECT_EQ(native.trace.components().size(),
            simulated.trace.components().size());
  const auto a_native = rt::assess(spec, native);
  const auto a_sim = rt::assess(spec, simulated);
  EXPECT_EQ(a_native.members.size(), a_sim.members.size());
}

TEST(Pipeline, MeasuredMakespanBoundsModelMakespan) {
  // The measured member makespan includes warm-up transients, so it is at
  // least (1 - tolerance) of the steady-state model value.
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  for (const auto& c : wl::paper_set1()) {
    const auto a = rt::assess(c.spec, exec.run(c.spec));
    for (const auto& m : a.members) {
      EXPECT_GT(m.makespan_measured, 0.9 * m.makespan_model) << c.name;
      EXPECT_LT(m.makespan_measured, 1.1 * m.makespan_model) << c.name;
    }
  }
}

TEST(Pipeline, EfficiencyAlwaysInUnitInterval) {
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  for (const auto& c : wl::paper_table4()) {
    const auto a = rt::assess(c.spec, exec.run(c.spec));
    for (const auto& m : a.members) {
      EXPECT_GT(m.efficiency, 0.0) << c.name;
      EXPECT_LE(m.efficiency, 1.0 + 1e-9) << c.name;
    }
  }
}

TEST(Pipeline, EnsembleMakespanIsMaxMemberEverywhere) {
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  for (const auto& c : wl::paper_set1()) {
    const auto result = exec.run(c.spec);
    double max_member = 0.0;
    for (std::uint32_t m : result.trace.members()) {
      max_member = std::max(max_member, met::member_makespan(result.trace, m));
    }
    EXPECT_DOUBLE_EQ(met::ensemble_makespan(result.trace), max_member)
        << c.name;
  }
}

TEST(Pipeline, PlacementSearchFindsCoLocationOptimal) {
  // The paper's future-work use case: enumerate every placement of the
  // 2-member ensemble on 3 nodes and rank by F(P^{U,A,P}); the winner
  // must be a fully co-located assignment (CP = 1 for every member),
  // which is exactly C1.5's shape.
  const auto platform = wl::cori_like_platform();
  rt::SimulatedExecutor exec(platform);
  wl::EnumerationOptions opt;
  opt.members = 2;
  opt.analyses_per_member = 1;
  opt.node_pool = 3;
  const auto candidates = wl::enumerate_placements(platform, opt);
  ASSERT_GT(candidates.size(), 5u);

  std::string best_name;
  double best_f = -1e18;
  for (const auto& c : candidates) {
    auto spec = c.spec;
    spec.n_steps = 6;  // keep the sweep fast; steady state is immediate
    const auto a = rt::assess(spec, exec.run(spec));
    const double f = a.objective(core::IndicatorKind::kUAP);
    if (f > best_f) {
      best_f = f;
      best_name = c.name;
    }
  }
  EXPECT_EQ(best_name, "s0a0|s1a1");  // C1.5's canonical shape
}

TEST(Pipeline, StageAccountingCoversTheWholeTimeline) {
  // For every component, the sum of all stage durations equals the span
  // from its first start to its last end (no unaccounted gaps).
  rt::SimulatedExecutor exec(wl::cori_like_platform());
  const auto c = wl::paper_config("C1.5");
  const auto result = exec.run(c.spec);
  for (const auto& id : result.trace.components()) {
    double total = 0.0;
    for (const auto& r : result.trace.for_component(id)) {
      total += r.duration();
    }
    const double span = result.trace.component_end(id) -
                        result.trace.component_start(id);
    EXPECT_NEAR(total, span, 1e-6 * span) << id.str();
  }
}

TEST(Pipeline, NativeAnalysesAgreeAcrossCoupledKernels) {
  // Two identical kernels coupled to the same simulation must produce
  // identical collective-variable series (they read identical chunks).
  rt::EnsembleSpec spec = wl::small_native_ensemble(1, 1, 3);
  spec.members[0].analyses.push_back(spec.members[0].analyses[0]);
  const auto result = rt::NativeExecutor().run(spec);
  ASSERT_EQ(result.analysis_outputs.size(), 2u);
  const auto& s0 = result.analysis_outputs[0].results;
  const auto& s1 = result.analysis_outputs[1].results;
  ASSERT_EQ(s0.size(), s1.size());
  for (std::size_t i = 0; i < s0.size(); ++i) {
    EXPECT_EQ(s0[i].values, s1[i].values);
  }
}

}  // namespace
}  // namespace wfe
